"""The chaos matrix: every injector versus a fault-free oracle.

Each :class:`Scenario` arms one failure mode over a deterministic
synthetic workload (planted-partition graph + community-biased stream),
lets it fire, then drives the recovery protocol a real deployment would:

* **pipeline** scenarios exercise the durability layer directly — append
  each activation to the WAL, apply it, checkpoint periodically; on an
  :class:`~repro.faults.plan.InjectedCrash` (or at end of stream,
  standing in for a ``kill -9``) reopen the data directory, run
  :func:`~repro.service.snapshots.recover_engine` and have the "client"
  resend every activation past the recovered high-water mark;
* **service** scenarios run a real :class:`~repro.service.server.ANCServer`
  on a background event loop (:class:`ServerThread`) and push the stream
  through a retrying :class:`~repro.service.client.ServiceClient`, so
  socket resets, duplicated batches, overload shedding and slow-reader
  eviction hit the actual protocol path;
* **shard** scenarios run a real 2-shard deployment — worker processes
  behind a :class:`~repro.shard.router.ShardRouter` on a background
  loop (:class:`RouterThread`) — and attack the scatter-gather tier: a
  worker hard-crashing mid-batch (supervised respawn + WAL recovery +
  idempotent resend), the router→worker link dropping with requests in
  flight, and one shard stalling a scatter past the fanout deadline.
  The merged answers must match a single-engine oracle and every
  worker's signature must match its per-shard oracle (docs/sharding.md);
* **replica** scenarios run a primary *and* a WAL-shipping follower
  (two :class:`ServerThread` instances) and attack the replication
  layer: stalled/severed/reordered links, a follower hard-crashing
  mid-apply, a primary killed mid-batch with the follower promoted in
  its place, and a split brain where the deposed primary keeps running
  behind an epoch fence (docs/replication.md).  The promoted follower
  must reach the byte-identical oracle signature and a full session
  replay must stay exactly-once across the failover;
* **readpath** scenarios run a primary, *two* followers and a
  :class:`~repro.readpath.router.ReadRouter` on its own background loop
  (:class:`ReadRouterThread`) and attack the read-routing tier under a
  live read-your-writes session: followers pinned behind the session
  token by stalled fetches, a follower hard-crashing under read load,
  a promotion while tokened reads keep flowing, and a session token
  outliving a failover.  The binding contract is *no silent staleness*:
  an ``ok`` read whose ``applied`` watermark is behind the session token
  is classified ``diverged`` no matter what else went right
  (docs/replication.md § Read routing).

Every run is classified against the scenario's contract:

* ``recovered`` — final engine state is **byte-identical** to the
  fault-free oracle (exact float reprs, all cluster levels);
* ``typed-failure`` — recovery refused with :class:`WalCorruptError` /
  :class:`CheckpointCorruptError` (correct when the fault destroyed
  acknowledged data);
* ``diverged`` — recovery *claimed* success but the state differs.
  This is the one outcome that is never acceptable; CI gates on it.

``repro-anc chaos`` runs the matrix from the command line and
``tests/chaos/`` asserts it under pytest (``-m chaos``).
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # runtime import is deferred: repro.shard imports repro.faults
    from ..readpath.router import ReadRouter, ReadRouterConfig
    from ..shard.router import RouterConfig, ShardRouter
    from ..shard.worker import ShardDeployment

from ..core.activation import Activation
from ..core.anc import ANCParams, make_engine
from ..graph.generators import planted_partition
from ..graph.graph import Graph
from ..replica.admin import promote
from ..service.client import RetryPolicy, ServiceClient, ServiceError
from ..service.server import ANCServer, ServerConfig
from ..service.snapshots import (
    CheckpointCorruptError,
    CheckpointStore,
    WalCorruptError,
    WriteAheadLog,
    apply_activations,
    engine_signature,
    recover_engine,
    signature_digest,
)
from ..workloads.streams import community_biased_stream
from .plan import FaultPlan, FaultSpec, InjectedCrash

__all__ = [
    "ChaosResult",
    "ReadRouterThread",
    "RouterThread",
    "Scenario",
    "SCENARIOS",
    "ServerThread",
    "build_shard_workload",
    "engine_signature",
    "report_lines",
    "run_matrix",
    "run_scenario",
    "scenario_by_name",
    "write_report",
]

#: Small-but-nontrivial engine parameters shared by every scenario (and
#: by the oracle — determinism demands the exact same configuration).
QUICK_PARAMS = ANCParams(rep=1, k=2, seed=0, rescale_every=64)

#: Pipeline scenarios cut a checkpoint this often (in applied activations).
CHECKPOINT_EVERY = 40

#: Service scenarios send the stream in client batches of this size.
CLIENT_BATCH = 25


def _build_workload(seed: int) -> Tuple[Graph, List[Activation]]:
    """Deterministic graph + activation stream for one matrix seed."""
    graph, labels = planted_partition(
        40, 4, p_in=0.5, p_out=0.05, seed=seed + 13
    )
    stream = community_biased_stream(
        graph, labels, timestamps=10, fraction=0.08, seed=seed
    )
    return graph, list(stream)


#: Engine parameters of the shard scenarios (and the shard tests and
#: ``bench_shard_scaling``): identical to :data:`QUICK_PARAMS` except
#: that periodic rescaling is disabled, so a worker's engine state
#: depends only on the activations *it* ingested — the property that
#: makes per-shard oracles byte-comparable (docs/sharding.md).
SHARD_PARAMS = ANCParams(rep=1, k=2, seed=0, rescale_every=10**9)

#: Shard scenarios run this many engine workers behind the router.
SHARD_COUNT = 2


def _sut_params(base: ANCParams) -> ANCParams:
    """Engine parameters for a system-under-test engine.

    ``ANC_BACKEND`` (``dict`` | ``array``) overrides the engine backend
    of every SUT engine — the pipeline engine, recovery, the service
    and replica servers, and the shard workers — while every *oracle*
    keeps ``base`` (dict backend).  With ``ANC_BACKEND=array`` the
    whole matrix therefore doubles as a dict-vs-array differential
    harness: each cell's byte-identity contract is now checked across
    backends, not just across fault injection
    (``tests/chaos/test_chaos_matrix.py`` runs a pinned slice this way
    in CI; see docs/engine-internals.md).
    """
    backend = os.environ.get("ANC_BACKEND", "").strip()
    if not backend or backend == base.engine_backend:
        return base
    return replace(base, engine_backend=backend)


def build_shard_workload(
    seed: int,
    *,
    blocks: int = 2,
    nodes_per_block: int = 24,
    communities: int = 2,
    timestamps: int = 10,
    fraction: float = 0.1,
) -> Tuple[Graph, List[Activation]]:
    """Disjoint union of planted-partition blocks + interleaved streams.

    Each block is one (or a few) connected components small enough to
    pack whole onto a shard, so every activation stays intra-shard and
    scatter-gather answers must be *exact* — the oracle contract the
    shard scenarios, ``tests/test_shard.py`` and
    ``benchmarks/bench_shard_scaling.py`` all pin down.
    """
    edges: List[Tuple[int, int]] = []
    acts: List[Activation] = []
    offset = 0
    for block in range(blocks):
        block_graph, labels = planted_partition(
            nodes_per_block,
            communities,
            p_in=0.5,
            p_out=0.05,
            seed=seed + 13 + 101 * block,
        )
        stream = community_biased_stream(
            block_graph,
            labels,
            timestamps=timestamps,
            fraction=fraction,
            seed=seed + 7 * block,
        )
        for u, v in block_graph.edges():
            edges.append((u + offset, v + offset))
        for act in stream:
            acts.append(Activation(act.u + offset, act.v + offset, act.t))
        offset += block_graph.n
    graph = Graph(offset, edges)
    acts.sort(key=lambda a: (a.t, a.u, a.v))
    return graph, acts


# ``engine_signature`` moved to repro.service.snapshots so the server's
# divergence auditor can use it without importing the chaos harness; it
# is still re-exported here (and from ``repro.faults``) for callers that
# know it as the chaos oracle.

@dataclass
class ChaosResult:
    """Outcome of one (scenario, seed) cell of the matrix."""

    scenario: str
    seed: int
    status: str  # "recovered" | "typed-failure" | "diverged" | "error"
    expect: str
    detail: str = ""
    injected: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The run did what the scenario's contract promises."""
        return self.status == self.expect

    @property
    def silent_divergence(self) -> bool:
        """Recovery claimed success over wrong state — the CI-gating sin."""
        return self.status == "diverged"

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "status": self.status,
            "expect": self.expect,
            "ok": self.ok,
            "detail": self.detail,
            "injected": self.injected,
        }


@dataclass(frozen=True)
class Scenario:
    """One armed failure mode plus its recovery contract.

    ``specs`` receives ``(seed, n_acts)`` so triggers can sit mid-stream
    regardless of the seed-dependent stream length.  ``expect`` is the
    contractual outcome: ``recovered`` (byte-identical state after the
    protocol's own resend/replay) or ``typed-failure`` (recovery must
    *refuse* because acknowledged data is unrecoverable).

    ``flow`` only applies to ``mode="replica"`` and picks the driver:
    ``steady`` (follower tails a live stream), ``catchup`` (follower
    starts after the whole stream committed), ``follower-restart``
    (follower crashes, restarts from its own disk, catches up),
    ``failover`` (primary dies mid-batch, follower promoted, session
    replayed) and ``split-brain`` (promotion while the old primary
    still runs behind the fence).
    """

    name: str
    mode: str  # "pipeline" | "service" | "replica"
    expect: str
    specs: Callable[[int, int], List[FaultSpec]]
    description: str = ""
    server: Mapping[str, object] = field(default_factory=dict)
    client_attempts: int = 6
    flow: str = "steady"


# ----------------------------------------------------------------------
# Pipeline scenarios: the durability layer head-on
# ----------------------------------------------------------------------

def _mid(n_acts: int) -> int:
    """A trigger count mid-stream, past the first checkpoint."""
    return max(CHECKPOINT_EVERY + 2, n_acts // 2)


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="wal-torn-tail",
        mode="pipeline",
        expect="recovered",
        description="crash mid-append leaves half a record; repaired, tail resent",
        specs=lambda seed, n: [
            FaultSpec("wal.append", "torn-tail", at_count=_mid(n))
        ],
    ),
    Scenario(
        name="wal-short-write",
        mode="pipeline",
        expect="recovered",
        description="final record misses fields (short write) then crash",
        specs=lambda seed, n: [
            FaultSpec("wal.append", "short-write", at_count=_mid(n))
        ],
    ),
    Scenario(
        name="wal-bit-flip-tail",
        mode="pipeline",
        expect="recovered",
        description="flipped digit in the final record; CRC catches it",
        specs=lambda seed, n: [
            FaultSpec("wal.append", "bit-flip", at_count=_mid(n))
        ],
    ),
    Scenario(
        name="wal-fsync-loss-tail",
        mode="pipeline",
        expect="recovered",
        description="acked append never hit disk; crash tears the next one",
        specs=lambda seed, n: [
            FaultSpec("wal.append", "fsync-loss", at_count=_mid(n)),
            FaultSpec("wal.append", "torn-tail", at_count=_mid(n) + 1),
        ],
    ),
    Scenario(
        name="wal-lost-page",
        mode="pipeline",
        expect="typed-failure",
        description="hole inside the acknowledged stream; replay must refuse",
        specs=lambda seed, n: [
            FaultSpec("wal.append", "fsync-loss", at_count=_mid(n)),
            FaultSpec("wal.append", "crash", at_count=_mid(n) + 1),
        ],
    ),
    Scenario(
        name="wal-crash-after-append",
        mode="pipeline",
        expect="recovered",
        description="kill -9 between WAL append and index apply",
        specs=lambda seed, n: [
            FaultSpec("wal.append", "crash", at_count=_mid(n))
        ],
    ),
    Scenario(
        name="checkpoint-skip-manifest",
        mode="pipeline",
        expect="recovered",
        description="crash before MANIFEST; torn checkpoint must be ignored",
        specs=lambda seed, n: [
            FaultSpec("checkpoint.write", "skip-manifest", at_count=1)
        ],
    ),
    Scenario(
        name="checkpoint-truncate-engine",
        mode="pipeline",
        expect="recovered",
        description="crash mid-write of engine.json; no MANIFEST, so ignored",
        specs=lambda seed, n: [
            FaultSpec("checkpoint.write", "truncate-engine", at_count=1)
        ],
    ),
    Scenario(
        name="checkpoint-bit-rot",
        mode="pipeline",
        expect="typed-failure",
        description="complete checkpoint rots after fsync; checksum must refuse",
        specs=lambda seed, n: [
            FaultSpec(
                "checkpoint.write",
                "corrupt-engine",
                at_count=max(1, n // CHECKPOINT_EVERY),
            )
        ],
    ),
    Scenario(
        name="index-save-truncated",
        mode="pipeline",
        expect="recovered",
        description="crash mid-write of index.json; no MANIFEST, so ignored",
        specs=lambda seed, n: [
            FaultSpec("index.save", "truncate", at_count=1)
        ],
    ),
    Scenario(
        name="checkpoint-complete-then-crash",
        mode="pipeline",
        expect="recovered",
        description="crash right after a complete checkpoint; restart resumes",
        specs=lambda seed, n: [
            FaultSpec("checkpoint.write", "crash", at_count=1)
        ],
    ),
    Scenario(
        name="slow-snapshot-reader",
        mode="pipeline",
        expect="recovered",
        description="index load stalls during recovery; slow but exact",
        specs=lambda seed, n: [
            FaultSpec(
                "index.load",
                "delay",
                probability=1.0,
                phase="recovery",
                args={"seconds": 0.05},
            )
        ],
    ),
    # -- service scenarios: the protocol path under network faults -----
    Scenario(
        name="service-conn-resets",
        mode="service",
        expect="recovered",
        description="first two connections dropped + one request reset mid-stream",
        specs=lambda seed, n: [
            FaultSpec("server.accept", "reset", at_count=1),
            FaultSpec("server.accept", "reset", at_count=2),
            FaultSpec("server.request", "reset", at_count=3),
        ],
        client_attempts=8,
    ),
    Scenario(
        name="service-batch-duplicate",
        mode="service",
        expect="recovered",
        description="a batch arrives twice; seq-keyed dedup keeps it exactly-once",
        specs=lambda seed, n: [
            FaultSpec("server.ingest_batch", "duplicate", at_count=2)
        ],
    ),
    Scenario(
        name="service-overload-shed",
        mode="service",
        expect="recovered",
        description="stalled writer backs the queue up; shed + client retry",
        specs=lambda seed, n: [
            FaultSpec(
                "ingest.flush", "delay", at_count=1, args={"seconds": 0.3}
            )
        ],
        server={
            "batch_size": 8,
            "max_latency": 0.005,
            "shed_watermark": 12,
        },
        client_attempts=16,
    ),
    Scenario(
        name="service-slow-reader",
        mode="service",
        expect="recovered",
        description="ack write stalls; server evicts, client resends the key",
        specs=lambda seed, n: [
            FaultSpec(
                "server.send", "stall", at_count=2, args={"seconds": 5.0}
            )
        ],
        server={"write_timeout": 0.2},
        client_attempts=8,
    ),
    # -- replica scenarios: WAL shipping, failover, split brain --------
    Scenario(
        name="replica-link-stall",
        mode="replica",
        expect="recovered",
        description="wal_fetch stalls repeatedly; follower lags but converges",
        specs=lambda seed, n: [
            FaultSpec(
                "replica.fetch",
                "stall",
                at_count=1,
                args={"seconds": 0.05},
            ),
            FaultSpec(
                "replica.fetch",
                "stall",
                at_count=3,
                args={"seconds": 0.05},
            ),
        ],
    ),
    Scenario(
        name="replica-link-drop",
        mode="replica",
        flow="catchup",
        expect="recovered",
        description="replication connection severed mid-catch-up; link reconnects",
        specs=lambda seed, n: [
            FaultSpec("replica.fetch", "drop", at_count=1),
            FaultSpec("replica.fetch", "drop", at_count=3),
        ],
    ),
    Scenario(
        name="replica-link-reorder",
        mode="replica",
        flow="catchup",
        expect="recovered",
        description="fetched chunk arrives reversed; follower discards and refetches",
        specs=lambda seed, n: [
            FaultSpec("replica.fetch", "reorder", at_count=1),
            FaultSpec("replica.fetch", "reorder", at_count=4),
        ],
    ),
    Scenario(
        name="replica-follower-crash-catchup",
        mode="replica",
        flow="follower-restart",
        expect="recovered",
        description="follower hard-crashes mid-apply; restarts from disk, catches up",
        specs=lambda seed, n: [
            FaultSpec("replica.apply", "crash", at_count=_mid(n))
        ],
    ),
    Scenario(
        name="replica-failover-mid-batch",
        mode="replica",
        flow="failover",
        expect="recovered",
        description="primary killed mid-batch; follower promoted, session replayed exactly-once",
        specs=lambda seed, n: [
            FaultSpec("wal.append", "crash", at_count=_mid(n))
        ],
        client_attempts=8,
    ),
    Scenario(
        name="replica-split-brain",
        mode="replica",
        flow="split-brain",
        expect="recovered",
        description="follower promoted while the old primary lives; the fence blocks the stale side",
        specs=lambda seed, n: [
            FaultSpec(
                "replica.fetch",
                "stall",
                at_count=3,
                args={"seconds": 0.03},
            )
        ],
        client_attempts=8,
    ),
    # -- shard scenarios: the scatter-gather tier under fire -----------
    Scenario(
        name="shard-worker-crash-mid-batch",
        mode="shard",
        expect="recovered",
        description=(
            "shard-0 worker hard-crashes mid-batch; the supervisor respawns "
            "it from its own WAL and the router resends the in-flight key"
        ),
        specs=lambda seed, n: [
            FaultSpec("wal.append", "crash", at_count=max(2, n // 2))
        ],
        client_attempts=8,
    ),
    Scenario(
        name="shard-router-worker-partition",
        mode="shard",
        expect="recovered",
        description=(
            "router→worker link drops twice with requests in flight; the "
            "retry resends the same key and worker dedup keeps exactly-once"
        ),
        specs=lambda seed, n: [
            FaultSpec("router.forward", "drop", at_count=2),
            FaultSpec("router.forward", "drop", at_count=5),
        ],
        client_attempts=8,
    ),
    Scenario(
        name="shard-scatter-timeout",
        mode="shard",
        expect="recovered",
        description=(
            "one shard stalls a scatter past the fanout deadline; the client "
            "gets a typed RETRY_AFTER and its retry succeeds"
        ),
        specs=lambda seed, n: [
            FaultSpec(
                "router.scatter",
                "stall",
                at_count=1,
                args={"seconds": 2.0, "shard": 0},
            )
        ],
        server={"fanout_timeout": 0.5, "shed_retry_after": 0.1},
        client_attempts=8,
    ),
    # -- readpath scenarios: the read-routing tier under fire ----------
    Scenario(
        name="readpath-lagged-follower-read",
        mode="readpath",
        flow="lagged-read",
        expect="recovered",
        description=(
            "stalled wal_fetch keeps the followers behind the session "
            "token; reads bounce STALE and drain to the primary's budget"
        ),
        specs=lambda seed, n: [
            FaultSpec(
                "replica.fetch", "stall", at_count=1, args={"seconds": 0.15}
            ),
            FaultSpec(
                "replica.fetch", "stall", at_count=3, args={"seconds": 0.15}
            ),
        ],
        client_attempts=8,
    ),
    Scenario(
        name="readpath-follower-crash-mid-read",
        mode="readpath",
        flow="follower-crash",
        expect="recovered",
        description=(
            "one follower hard-crashes under read load; the router marks "
            "it down and the session's reads drain to the survivor"
        ),
        specs=lambda seed, n: [
            FaultSpec("replica.apply", "crash", at_count=_mid(n))
        ],
        client_attempts=8,
    ),
    Scenario(
        name="readpath-promote-under-read-load",
        mode="readpath",
        flow="promote-under-load",
        expect="recovered",
        description=(
            "primary killed mid-batch with reads in flight; a follower is "
            "promoted and the router re-resolves roles from envelope epochs"
        ),
        specs=lambda seed, n: [
            FaultSpec("wal.append", "crash", at_count=_mid(n))
        ],
        client_attempts=10,
    ),
    Scenario(
        name="readpath-stale-token-after-failover",
        mode="readpath",
        flow="stale-token",
        expect="recovered",
        description=(
            "a session token outlives a planned failover; every "
            "post-promote read reflects the session or refuses typed"
        ),
        specs=lambda seed, n: [
            FaultSpec(
                "replica.fetch", "stall", at_count=2, args={"seconds": 0.05}
            )
        ],
        client_attempts=10,
    ),
)


def scenario_by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(
        f"unknown chaos scenario {name!r}; known: "
        + ", ".join(s.name for s in SCENARIOS)
    )


# ----------------------------------------------------------------------
# Pipeline runner
# ----------------------------------------------------------------------

def _run_pipeline(
    scenario: Scenario, seed: int, workdir: Path
) -> ChaosResult:
    graph, acts = _build_workload(seed)
    oracle = make_engine("ANCO", graph, QUICK_PARAMS)
    apply_activations(oracle, acts)
    expected = engine_signature(oracle)

    plan = FaultPlan(scenario.specs(seed, len(acts)), seed=seed)
    plan.set_phase("live")
    data_dir = workdir / f"{scenario.name}-s{seed}"
    store = CheckpointStore(data_dir, faults=plan)
    wal = WriteAheadLog(store.wal_path, faults=plan)
    engine = make_engine("ANCO", graph, _sut_params(QUICK_PARAMS))
    detail = "stream complete; simulated kill -9 at end"
    try:
        for i, act in enumerate(acts):
            wal.append(act)
            apply_activations(engine, [act])
            if (i + 1) % CHECKPOINT_EVERY == 0:
                store.write_checkpoint(engine)
    except InjectedCrash as exc:
        detail = f"crashed: {exc}"
    finally:
        wal.close()
    del engine  # a crash loses all in-memory state; recover from disk only

    plan.set_phase("recovery")
    try:
        recovered, replayed = recover_engine(
            graph, store, params=_sut_params(QUICK_PARAMS)
        )
    except (WalCorruptError, CheckpointCorruptError) as exc:
        return ChaosResult(
            scenario.name,
            seed,
            "typed-failure",
            scenario.expect,
            detail=f"{detail}; {type(exc).__name__}: {exc}",
            injected=list(plan.fired),
        )
    # The client resends everything past the recovered high-water mark —
    # it never got an ack for those, so at-least-once delivery covers the
    # tail the crash (or a benign torn/lost tail record) took.
    resend = acts[recovered.activations_processed:]
    tail_wal = WriteAheadLog(store.wal_path)
    try:
        for act in resend:
            tail_wal.append(act)
            apply_activations(recovered, [act])
    finally:
        tail_wal.close()
    got = engine_signature(recovered)
    status = "recovered" if got == expected else "diverged"
    return ChaosResult(
        scenario.name,
        seed,
        status,
        scenario.expect,
        detail=f"{detail}; replayed {replayed}, resent {len(resend)}",
        injected=list(plan.fired),
    )


# ----------------------------------------------------------------------
# Service runner
# ----------------------------------------------------------------------

class ServerThread:
    """An :class:`ANCServer` on a private event loop in a daemon thread.

    Lets blocking clients (the real :class:`ServiceClient`, chaos
    scenarios, tests) talk to an in-process server.  Use as a context
    manager; ``stop()`` requests a graceful shutdown and joins.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        config: Optional[ServerConfig] = None,
        params: Optional[ANCParams] = None,
        names: Optional[Sequence[Hashable]] = None,
    ) -> None:
        self._graph = graph
        self._config = config or ServerConfig()
        self._params = params
        self._names = names
        self.server: Optional[ANCServer] = None
        self.port: Optional[int] = None
        self.host: str = self._config.host
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="anc-chaos-server", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # anclint: disable=service-exception-discipline — a thread boundary cannot propagate; start()/stop() re-raise from ``self.error`` on the caller's thread
            self.error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = ANCServer(
            self._graph,
            self._names,
            config=self._config,
            params=self._params,
        )
        await self.server.start()
        self.port = self.server.port
        self._started.set()
        await self.server.serve_forever()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._started.wait(timeout=15.0):
            raise RuntimeError("server thread did not start within 15s")
        if self.error is not None:
            raise RuntimeError("server thread failed on startup") from self.error
        assert self.port is not None
        return self

    def stop(self) -> None:
        """Request a graceful shutdown and join the thread."""
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:  # anclint: disable=service-exception-discipline — the loop already exited (server shut down on its own); joining below is the only remaining work
                pass
        self._thread.join(timeout=15.0)
        if self._thread.is_alive():  # pragma: no cover - hang diagnostics
            raise RuntimeError("server thread did not shut down within 15s")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def _run_service(
    scenario: Scenario, seed: int, workdir: Path
) -> ChaosResult:
    graph, acts = _build_workload(seed)
    oracle = make_engine("ANCO", graph, QUICK_PARAMS)
    apply_activations(oracle, acts)
    expected = engine_signature(oracle)

    plan = FaultPlan(scenario.specs(seed, len(acts)), seed=seed)
    config = ServerConfig(
        port=0,
        engine="anco",
        metrics_interval=0.0,
        faults=plan,
        **scenario.server,  # type: ignore[arg-type]
    )
    retry = RetryPolicy(
        attempts=scenario.client_attempts,
        base_delay=0.02,
        max_delay=0.25,
        seed=seed,
    )
    with ServerThread(
        graph, config=config, params=_sut_params(QUICK_PARAMS)
    ) as handle:
        assert handle.server is not None and handle.port is not None
        try:
            client = ServiceClient(
                handle.host, handle.port, timeout=5.0, retry=retry
            )
            try:
                for start in range(0, len(acts), CLIENT_BATCH):
                    chunk = acts[start : start + CLIENT_BATCH]
                    client.ingest_batch([(a.u, a.v, a.t) for a in chunk])
                applied = client.sync()
                stats = client.stats()
            finally:
                client.close()
        except ServiceError as exc:
            return ChaosResult(
                scenario.name,
                seed,
                "typed-failure",
                scenario.expect,
                detail=f"{type(exc).__name__}: {exc}",
                injected=list(plan.fired),
            )
        # The writer is idle after sync() with no traffic in flight, so
        # reading the engine from this thread observes a quiescent state.
        got = engine_signature(handle.server.host.engine)
        raw = handle.server.metrics.snapshot(rate_key=None).get("counters")
        counters: Dict[str, float] = dict(raw) if isinstance(raw, dict) else {}
        detail = (
            f"applied={applied}/{len(acts)} degraded={stats.get('degraded')}"
            f" shed={counters.get('ingest_shed', 0)}"
            f" dedup={counters.get('ingest_dedup_hits', 0)}"
            f" evictions={counters.get('slow_reader_evictions', 0)}"
        )
    if applied != len(acts) or got != expected:
        status = "diverged"
    else:
        status = "recovered"
    return ChaosResult(
        scenario.name,
        seed,
        status,
        scenario.expect,
        detail=detail,
        injected=list(plan.fired),
    )


# ----------------------------------------------------------------------
# Replica runner: primary + WAL-shipping follower under link faults
# ----------------------------------------------------------------------

#: Fault sites armed on the *follower* of a replica scenario; everything
#: else in the spec list arms on the primary (which serves ``wal_fetch``).
_REPLICA_FOLLOWER_SITES = frozenset({"replica.apply"})


def _await(check: Callable[[], bool], *, timeout: float, what: str) -> None:
    """Poll ``check`` until true or raise after ``timeout`` seconds."""
    deadline = time.monotonic() + timeout
    while not check():
        if time.monotonic() > deadline:
            raise RuntimeError(f"timed out after {timeout}s waiting for {what}")
        time.sleep(0.01)


def _counters(handle: ServerThread) -> Dict[str, float]:
    assert handle.server is not None
    raw = handle.server.metrics.snapshot(rate_key=None).get("counters")
    return {k: float(v) for k, v in raw.items()} if isinstance(raw, Mapping) else {}


def _run_replica(
    scenario: Scenario, seed: int, workdir: Path
) -> ChaosResult:
    graph, acts = _build_workload(seed)
    oracle = make_engine("ANCO", graph, QUICK_PARAMS)
    apply_activations(oracle, acts)
    expected = engine_signature(oracle)

    specs = scenario.specs(seed, len(acts))
    primary_specs = [s for s in specs if s.site not in _REPLICA_FOLLOWER_SITES]
    follower_specs = [s for s in specs if s.site in _REPLICA_FOLLOWER_SITES]
    primary_plan = FaultPlan(primary_specs, seed=seed) if primary_specs else None
    follower_plan = FaultPlan(follower_specs, seed=seed) if follower_specs else None
    base = workdir / f"{scenario.name}-s{seed}"

    def _config(
        plan: Optional[FaultPlan],
        data_dir: Path,
        **role_kwargs: object,
    ) -> ServerConfig:
        return ServerConfig(
            port=0,
            engine="anco",
            metrics_interval=0.0,
            data_dir=data_dir,
            checkpoint_every=CHECKPOINT_EVERY,
            faults=plan,
            **role_kwargs,  # type: ignore[arg-type]
        )

    def _follower_kwargs(primary_port: int) -> Dict[str, object]:
        return {
            "role": "follower",
            "primary_host": "127.0.0.1",
            "primary_port": primary_port,
            "replica_id": f"chaos-{seed}",
            "poll_interval": 0.005,
            "audit_interval": 0.05,
        }

    def _start_follower(plan: Optional[FaultPlan], port: int) -> ServerThread:
        handle = ServerThread(
            graph,
            config=_config(plan, base / "follower", **_follower_kwargs(port)),
            params=_sut_params(QUICK_PARAMS),
        ).start()
        threads.append(handle)
        return handle

    def _caught_up(handle: ServerThread, target: int) -> bool:
        assert handle.server is not None
        host = handle.server.host
        return host.ingested >= target and host.applied >= target

    batches = [
        [(a.u, a.v, a.t) for a in acts[i : i + CLIENT_BATCH]]
        for i in range(0, len(acts), CLIENT_BATCH)
    ]
    keys = [f"{scenario.name}-{seed}-b{i}" for i in range(len(batches))]
    retry = RetryPolicy(
        attempts=scenario.client_attempts,
        base_delay=0.02,
        max_delay=0.25,
        seed=seed,
    )

    threads: List[ServerThread] = []
    try:
        primary = ServerThread(
            graph,
            config=_config(
                primary_plan, base / "primary", **dict(scenario.server)
            ),
            params=_sut_params(QUICK_PARAMS),
        ).start()
        threads.append(primary)
        assert primary.port is not None
        follower: Optional[ServerThread] = None
        if scenario.flow != "catchup":
            follower = _start_follower(follower_plan, primary.port)

        detail_extra = ""
        if scenario.flow in ("steady", "catchup", "follower-restart"):
            client = ServiceClient(
                primary.host, primary.port, timeout=5.0, retry=retry
            )
            try:
                for items, key in zip(batches, keys):
                    client.ingest_batch(items, key=key)
                applied = client.sync()
            finally:
                client.close()
            if scenario.flow == "catchup":
                follower = _start_follower(follower_plan, primary.port)
            if scenario.flow == "follower-restart":
                assert follower is not None and follower.server is not None
                _await(
                    lambda: follower.server.crashed,  # type: ignore[union-attr]
                    timeout=30.0,
                    what="the injected follower crash",
                )
                follower.stop()
                threads.remove(follower)
                follower = _start_follower(None, primary.port)
                detail_extra = " restarted-after-crash"
            assert follower is not None and follower.server is not None
            new_primary = follower
            _await(
                lambda: _caught_up(follower, len(acts)),
                timeout=30.0,
                what="follower catch-up",
            )
            got_primary = engine_signature(primary.server.host.engine)  # type: ignore[union-attr]
            in_contract = got_primary == expected
        elif scenario.flow == "failover":
            assert follower is not None and follower.port is not None
            client = ServiceClient(
                primary.host,
                primary.port,
                timeout=5.0,
                retry=retry,
                failover=[(follower.host, follower.port)],
            )
            try:
                promoted = False
                i = 0
                while i < len(batches):
                    try:
                        client.ingest_batch(batches[i], key=keys[i])
                        i += 1
                        if i == 1 and not promoted:
                            # Let the follower replicate the first batch
                            # before the crash-prone tail: the post-failover
                            # replay below must then resume against the
                            # dedup map rebuilt from *replicated* records
                            # (the exactly-once contract), not merely
                            # re-ingest into an empty promoted log.
                            _await(
                                lambda: _caught_up(follower, CLIENT_BATCH),
                                timeout=30.0,
                                what="follower replication of the first batch",
                            )
                    except ServiceError:
                        if promoted:
                            raise
                        _await(
                            lambda: primary.server.crashed,  # type: ignore[union-attr]
                            timeout=10.0,
                            what="the injected primary crash",
                        )
                        promote(
                            ("127.0.0.1", follower.port),
                            old_primary=("127.0.0.1", primary.port),
                            timeout=2.0,
                        )
                        promoted = True
                        # Replay the whole session through the promoted
                        # follower: exactly-once dedup (rebuilt from the
                        # replicated WAL) must absorb every duplicate.
                        i = 0
                applied = client.sync()
            finally:
                client.close()
            assert follower.server is not None
            new_primary = follower
            dedup_hits = _counters(follower).get("ingest_dedup_hits", 0)
            detail_extra = (
                f" promoted={promoted} epoch={follower.server.epoch}"
                f" dedup={dedup_hits:g}"
            )
            # The promoted node must outrank the dead primary's epoch 1
            # (fencing stays strict even when the old node was
            # unreachable), and the replayed session must have hit the
            # dedup map rebuilt from replicated records — both silently
            # degrade to a fresh re-ingest otherwise.
            in_contract = (
                promoted
                and follower.server.role == "primary"
                and follower.server.epoch > 1
                and dedup_hits > 0
            )
        elif scenario.flow == "split-brain":
            assert follower is not None and follower.port is not None
            client = ServiceClient(
                primary.host,
                primary.port,
                timeout=5.0,
                retry=retry,
                failover=[(follower.host, follower.port)],
            )
            try:
                half = max(1, len(batches) // 2)
                for items, key in zip(batches[:half], keys[:half]):
                    client.ingest_batch(items, key=key)
                client.sync()
                promote(
                    ("127.0.0.1", follower.port),
                    old_primary=("127.0.0.1", primary.port),
                    timeout=2.0,
                )
                # The deposed primary is still alive: the client must
                # rotate off it on FENCED and land on the new primary.
                for items, key in zip(batches[half:], keys[half:]):
                    client.ingest_batch(items, key=key)
                applied = client.sync()
            finally:
                client.close()
            probe = ServiceClient(
                primary.host,
                primary.port,
                timeout=2.0,
                retry=RetryPolicy(attempts=1),
            )
            try:
                probe.request(
                    "ingest_batch",
                    items=[list(batches[0][0])],
                    key="split-brain-probe",
                    idempotent=False,
                )
                stale_refused = False
            except ServiceError as exc:  # anclint: disable=service-exception-discipline — FENCED here is the scenario's *pass* condition; anything else (or no error) is the split-brain failure the matrix reports
                stale_refused = exc.code == "FENCED"
            finally:
                probe.close()
            assert follower.server is not None
            new_primary = follower
            detail_extra = (
                f" stale-write-refused={stale_refused}"
                f" epoch={follower.server.epoch}"
            )
            in_contract = stale_refused and follower.server.role == "primary"
        else:
            raise ValueError(f"unknown replica flow {scenario.flow!r}")

        assert new_primary.server is not None
        got_follower = engine_signature(new_primary.server.host.engine)
        counters = _counters(new_primary)
        diverged = new_primary.server.diverged
        status = (
            "recovered"
            if (
                applied == len(acts)
                and got_follower == expected
                and diverged is None
                and in_contract
            )
            else "diverged"
        )
        detail = (
            f"applied={applied}/{len(acts)}"
            f" refetches={counters.get('replica_refetches', 0):g}"
            f" link_errors={counters.get('replica_link_errors', 0):g}"
            f" audits={counters.get('replica_audits', 0):g}"
            f"{detail_extra}"
        )
        if diverged is not None:
            detail += f" diverged={diverged}"
    finally:
        # Followers first: their replication links hold connections into
        # the primary, and stopping the primary under a live link cancels
        # its handler tasks noisily.
        for handle in reversed(threads):
            handle.stop()
    fired: List[Dict[str, object]] = []
    for plan in (primary_plan, follower_plan):
        if plan is not None:
            fired.extend(plan.fired)
    return ChaosResult(
        scenario.name,
        seed,
        status,
        scenario.expect,
        detail=detail,
        injected=fired,
    )


# ----------------------------------------------------------------------
# Shard runner: the scatter-gather tier over real worker processes
# ----------------------------------------------------------------------

class RouterThread:
    """A :class:`~repro.shard.router.ShardRouter` on a private event loop.

    The shard analogue of :class:`ServerThread`: spawns the deployment's
    worker processes, binds the router and serves until ``stop()``, so
    blocking clients can drive a real multi-process topology from a
    test.  Startup is slower than one server (one process spawn plus
    recovery per shard), hence the longer timeouts.
    """

    def __init__(
        self,
        deployment: "ShardDeployment",
        *,
        config: Optional["RouterConfig"] = None,
    ) -> None:
        self._deployment = deployment
        self._config = config
        self.router: Optional["ShardRouter"] = None
        self.port: Optional[int] = None
        self.host: str = config.host if config is not None else "127.0.0.1"
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="anc-chaos-router", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # anclint: disable=service-exception-discipline — a thread boundary cannot propagate; start()/stop() re-raise from ``self.error`` on the caller's thread
            self.error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        from ..shard.router import RouterConfig, ShardRouter

        self._loop = asyncio.get_running_loop()
        self.router = ShardRouter(
            self._deployment, config=self._config or RouterConfig()
        )
        await self.router.start()
        self.port = self.router.port
        self._started.set()
        await self.router.serve_forever()

    def start(self) -> "RouterThread":
        self._thread.start()
        if not self._started.wait(timeout=120.0):
            raise RuntimeError("router thread did not start within 120s")
        if self.error is not None:
            raise RuntimeError("router thread failed on startup") from self.error
        assert self.port is not None
        return self

    def stop(self) -> None:
        """Request a graceful shutdown (router + workers) and join."""
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_stop)
            except RuntimeError:  # anclint: disable=service-exception-discipline — the loop already exited (router shut down on its own); joining below is the only remaining work
                pass
        self._thread.join(timeout=120.0)
        if self._thread.is_alive():  # pragma: no cover - hang diagnostics
            raise RuntimeError("router thread did not shut down within 120s")

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class ReadRouterThread:
    """A :class:`~repro.readpath.router.ReadRouter` on a private loop.

    The read-path analogue of :class:`RouterThread`: binds the router
    over an already-running primary/follower fleet and serves until
    ``stop()``, so blocking clients can drive tokened reads and
    passthrough writes through the real routing tier from a test.
    """

    def __init__(
        self,
        primary: Tuple[str, int],
        *,
        followers: Sequence[Tuple[str, int]] = (),
        config: Optional["ReadRouterConfig"] = None,
    ) -> None:
        self._primary = primary
        self._followers = list(followers)
        self._config = config
        self.router: Optional["ReadRouter"] = None
        self.port: Optional[int] = None
        self.host: str = config.host if config is not None else "127.0.0.1"
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="anc-chaos-readrouter", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # anclint: disable=service-exception-discipline — a thread boundary cannot propagate; start()/stop() re-raise from ``self.error`` on the caller's thread
            self.error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        from ..readpath.router import ReadRouter, ReadRouterConfig

        self._loop = asyncio.get_running_loop()
        self.router = ReadRouter(
            self._primary,
            followers=self._followers,
            config=self._config or ReadRouterConfig(),
        )
        await self.router.start()
        self.port = self.router.port
        self._started.set()
        await self.router.serve_forever()

    def start(self) -> "ReadRouterThread":
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("read-router thread did not start within 30s")
        if self.error is not None:
            raise RuntimeError(
                "read-router thread failed on startup"
            ) from self.error
        assert self.port is not None
        return self

    def stop(self) -> None:
        """Request a graceful shutdown and join."""
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_stop)
            except RuntimeError:  # anclint: disable=service-exception-discipline — the loop already exited (router shut down on its own); joining below is the only remaining work
                pass
        self._thread.join(timeout=30.0)
        if self._thread.is_alive():  # pragma: no cover - hang diagnostics
            raise RuntimeError("read-router thread did not shut down within 30s")

    def __enter__(self) -> "ReadRouterThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def _normalized_clusters(clusters: Sequence[Sequence[object]]) -> Tuple[Tuple[int, ...], ...]:
    """Order-free canonical form of a clustering (int labels)."""
    return tuple(
        sorted(tuple(sorted(int(v) for v in cluster)) for cluster in clusters)  # type: ignore[arg-type]
    )


def _run_shard(
    scenario: Scenario, seed: int, workdir: Path
) -> ChaosResult:
    from ..shard.router import RouterConfig
    from ..shard.shardmap import ShardMap
    from ..shard.worker import ShardDeployment

    graph, acts = build_shard_workload(seed)
    smap = ShardMap.build(graph, SHARD_COUNT, seed=0)
    shard_acts: Dict[int, List[Activation]] = {s: [] for s in range(SHARD_COUNT)}
    for act in acts:
        shard_acts[smap.shard_of_edge(act.u, act.v)].append(act)

    # The oracle a correct deployment must merge back to: one engine over
    # the whole graph and the whole stream.
    oracle = make_engine("ANCO", graph, SHARD_PARAMS)
    apply_activations(oracle, acts)

    # Sites under ``router.`` arm in the router process; everything else
    # travels to shard 0's worker via its picklable spec (the plan — and
    # its fired log — then lives in the child).
    specs = scenario.specs(seed, len(shard_acts[0]))
    router_specs = [s for s in specs if s.site.startswith("router.")]
    worker_specs = [s for s in specs if not s.site.startswith("router.")]
    router_plan = FaultPlan(router_specs, seed=seed) if router_specs else None

    deployment = ShardDeployment(
        graph,
        shards=SHARD_COUNT,
        seed=0,
        params=_sut_params(SHARD_PARAMS),
        data_dir=workdir / f"{scenario.name}-s{seed}",
        checkpoint_every=CHECKPOINT_EVERY,
        fault_specs={0: worker_specs} if worker_specs else None,
        fault_seed=seed,
    )
    router_config = RouterConfig(
        faults=router_plan,
        **scenario.server,  # type: ignore[arg-type]
    )
    retry = RetryPolicy(
        attempts=scenario.client_attempts,
        base_delay=0.02,
        max_delay=0.25,
        seed=seed,
    )
    batches = [
        acts[i : i + CLIENT_BATCH] for i in range(0, len(acts), CLIENT_BATCH)
    ]
    half = max(1, len(batches) // 2)
    with RouterThread(deployment, config=router_config) as handle:
        router = handle.router
        assert router is not None and handle.port is not None
        try:
            client = ServiceClient(
                handle.host, handle.port, timeout=15.0, retry=retry
            )
            try:
                for i, chunk in enumerate(batches[:half]):
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in chunk],
                        key=f"{scenario.name}-{seed}-b{i}",
                    )
                # First scatter mid-stream: the stall scenario fires here
                # and the client must recover through its typed retry.
                client.request("clusters")
                for i, chunk in enumerate(batches[half:], start=half):
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in chunk],
                        key=f"{scenario.name}-{seed}-b{i}",
                    )
                applied = client.sync()
                merged = client.request("clusters")
            finally:
                client.close()
        except ServiceError as exc:
            fired = list(router_plan.fired) if router_plan is not None else []
            return ChaosResult(
                scenario.name,
                seed,
                "typed-failure",
                scenario.expect,
                detail=f"{type(exc).__name__}: {exc}",
                injected=fired,
            )

        # Per-shard byte-identity: each worker's signature must equal an
        # oracle engine fed only that shard's slice of the stream.
        sig_mismatches: List[int] = []
        for shard in range(SHARD_COUNT):
            worker = deployment.workers[shard]
            assert worker.port is not None
            with ServiceClient(
                handle.host,
                worker.port,
                timeout=15.0,
                retry=RetryPolicy(attempts=4, base_delay=0.02, seed=seed),
            ) as worker_client:
                signature = worker_client.request("signature")
            shard_oracle = make_engine(
                "ANCO", smap.shard_graph(shard), SHARD_PARAMS
            )
            apply_activations(shard_oracle, shard_acts[shard])
            if signature.get("digest") != signature_digest(shard_oracle):
                sig_mismatches.append(shard)

        restarts = deployment.total_restarts()
        router_counters = {
            name: counter.value
            for name, counter in router.metrics.counters().items()
        }

    # Merged answer versus the whole-graph oracle at the level the
    # deployment actually answered.
    level = int(merged["level"])
    clusters_match = _normalized_clusters(
        merged["clusters"]
    ) == _normalized_clusters(oracle.clusters(level))

    # Scenario-specific evidence that the armed fault actually bit.
    retries = router_counters.get("router_forward_retries", 0.0)
    timeouts = router_counters.get("router_scatter_timeouts", 0.0)
    contract_ok = True
    if scenario.name == "shard-worker-crash-mid-batch":
        contract_ok = restarts >= 1
    elif scenario.name == "shard-router-worker-partition":
        contract_ok = retries >= 2
    elif scenario.name == "shard-scatter-timeout":
        contract_ok = timeouts >= 1

    status = (
        "recovered"
        if (
            applied == len(acts)
            and not sig_mismatches
            and clusters_match
            and contract_ok
        )
        else "diverged"
    )
    detail = (
        f"applied={applied}/{len(acts)} restarts={restarts}"
        f" forward_retries={retries:g} scatter_timeouts={timeouts:g}"
        f" clusters_match={clusters_match}"
    )
    if sig_mismatches:
        detail += f" sig_mismatch={sig_mismatches}"

    fired = list(router_plan.fired) if router_plan is not None else []
    if worker_specs and restarts >= 1:
        # The worker's plan (and its fired log) died with the child
        # process; reconstruct the entries from the observed crash.
        for spec in worker_specs:
            fired.append(
                {
                    "site": spec.site,
                    "kind": spec.kind,
                    "hit": spec.at_count,
                    "shard": 0,
                    "reconstructed": True,
                }
            )
    return ChaosResult(
        scenario.name,
        seed,
        status,
        scenario.expect,
        detail=detail,
        injected=fired,
    )


# ----------------------------------------------------------------------
# Readpath runner: tokened reads through the routing tier under fire
# ----------------------------------------------------------------------

#: Client error codes a routed read may legally surface while the fleet
#: is degraded — every one is typed, none hands back stale data.
_READPATH_TYPED_DENIALS = frozenset(
    {"STALE", "RETRY_AFTER", "UNAVAILABLE", "TIMEOUT", "CONNECT"}
)


def _run_readpath(
    scenario: Scenario, seed: int, workdir: Path
) -> ChaosResult:
    from ..readpath.router import ReadRouterConfig

    graph, acts = _build_workload(seed)
    oracle = make_engine("ANCO", graph, QUICK_PARAMS)
    apply_activations(oracle, acts)
    expected = engine_signature(oracle)

    specs = scenario.specs(seed, len(acts))
    primary_specs = [s for s in specs if s.site not in _REPLICA_FOLLOWER_SITES]
    follower_specs = [s for s in specs if s.site in _REPLICA_FOLLOWER_SITES]
    primary_plan = FaultPlan(primary_specs, seed=seed) if primary_specs else None
    follower_plan = FaultPlan(follower_specs, seed=seed) if follower_specs else None
    base = workdir / f"{scenario.name}-s{seed}"

    def _config(
        plan: Optional[FaultPlan], data_dir: Path, **role_kwargs: object
    ) -> ServerConfig:
        return ServerConfig(
            port=0,
            engine="anco",
            metrics_interval=0.0,
            data_dir=data_dir,
            checkpoint_every=CHECKPOINT_EVERY,
            faults=plan,
            **role_kwargs,  # type: ignore[arg-type]
        )

    def _follower_kwargs(primary_port: int) -> Dict[str, object]:
        # replica_id is left at its host:port default — the identity the
        # router's auto-registration path keys on.
        return {
            "role": "follower",
            "primary_host": "127.0.0.1",
            "primary_port": primary_port,
            "poll_interval": 0.005,
            "audit_interval": 0.05,
        }

    def _caught_up(handle: ServerThread, target: int) -> bool:
        assert handle.server is not None
        host = handle.server.host
        return host.ingested >= target and host.applied >= target

    batches = [
        [(a.u, a.v, a.t) for a in acts[i : i + CLIENT_BATCH]]
        for i in range(0, len(acts), CLIENT_BATCH)
    ]
    keys = [f"{scenario.name}-{seed}-b{i}" for i in range(len(batches))]
    retry = RetryPolicy(
        attempts=scenario.client_attempts,
        base_delay=0.02,
        max_delay=0.25,
        seed=seed,
    )

    # The no-silent-staleness ledger: every ok read whose applied
    # watermark trails the session token at request time is a violation.
    silent_stale: List[Tuple[int, int]] = []
    reads_ok = 0
    typed_denials = 0

    threads: List[ServerThread] = []
    router_handle: Optional[ReadRouterThread] = None
    router: Optional["ReadRouter"] = None
    client: Optional[ServiceClient] = None
    try:
        primary = ServerThread(
            graph,
            config=_config(
                primary_plan, base / "primary", **dict(scenario.server)
            ),
            params=_sut_params(QUICK_PARAMS),
        ).start()
        threads.append(primary)
        assert primary.port is not None
        f1 = ServerThread(
            graph,
            config=_config(
                follower_plan, base / "f1", **_follower_kwargs(primary.port)
            ),
            params=_sut_params(QUICK_PARAMS),
        ).start()
        threads.append(f1)
        f2 = ServerThread(
            graph,
            config=_config(
                None, base / "f2", **_follower_kwargs(primary.port)
            ),
            params=_sut_params(QUICK_PARAMS),
        ).start()
        threads.append(f2)
        assert f1.port is not None and f2.port is not None

        router_handle = ReadRouterThread(
            ("127.0.0.1", primary.port),
            followers=[("127.0.0.1", f1.port), ("127.0.0.1", f2.port)],
            config=ReadRouterConfig(
                heartbeat_interval=0.05, retry_backoff=0.05
            ),
        ).start()
        assert router_handle.port is not None

        client = ServiceClient(
            router_handle.host,
            router_handle.port,
            timeout=5.0,
            retry=retry,
            session_reads=True,
        )

        def tokened_read() -> bool:
            """One read-your-writes read; ledgers the outcome."""
            nonlocal reads_ok, typed_denials
            token = client.session_token  # type: ignore[union-attr]
            try:
                doc = client.clusters_info()  # type: ignore[union-attr]
            except ServiceError as exc:
                if exc.code not in _READPATH_TYPED_DENIALS:
                    raise
                typed_denials += 1
                return False
            applied = int(doc.get("applied", -1))  # type: ignore[arg-type]
            if applied < token:
                silent_stale.append((token, applied))
            reads_ok += 1
            return True

        detail_extra = ""
        promoted = False
        new_primary = primary
        survivors = [primary, f1, f2]

        if scenario.flow in ("lagged-read", "follower-crash"):
            for items, key in zip(batches, keys):
                client.ingest_batch(items, key=key)
                tokened_read()
            if scenario.flow == "follower-crash":
                _await(
                    lambda: f1.server.crashed,  # type: ignore[union-attr]
                    timeout=30.0,
                    what="the injected follower crash",
                )
                # The session's reads must survive the dead follower.
                drained = sum(1 for _ in range(4) if tokened_read())
                detail_extra = f" reads-after-crash={drained}"
                survivors = [primary, f2]
            applied = client.sync()
            for handle in survivors[1:]:
                _await(
                    lambda h=handle: _caught_up(h, len(acts)),
                    timeout=30.0,
                    what="follower catch-up",
                )
        elif scenario.flow == "promote-under-load":
            i = 0
            while i < len(batches):
                try:
                    client.ingest_batch(batches[i], key=keys[i])
                    i += 1
                    if i == 1 and not promoted:
                        # First batch must replicate before the crash-prone
                        # tail so the post-failover replay resumes against
                        # the dedup map rebuilt from *replicated* records.
                        _await(
                            lambda: _caught_up(f1, CLIENT_BATCH),
                            timeout=30.0,
                            what="follower replication of the first batch",
                        )
                    tokened_read()
                except ServiceError:
                    if promoted:
                        raise
                    _await(
                        lambda: primary.server.crashed,  # type: ignore[union-attr]
                        timeout=10.0,
                        what="the injected primary crash",
                    )
                    # Reads during the outage stay typed or fresh — the
                    # ledger catches anything silently stale.
                    tokened_read()
                    promote(
                        ("127.0.0.1", f1.port),
                        old_primary=("127.0.0.1", primary.port),
                        timeout=2.0,
                    )
                    promoted = True
                    i = 0  # replay the session; dedup absorbs duplicates
            applied = client.sync()
            new_primary = f1
            survivors = [f1]
        elif scenario.flow == "stale-token":
            half = max(1, len(batches) // 2)
            for items, key in zip(batches[:half], keys[:half]):
                client.ingest_batch(items, key=key)
                tokened_read()
            pre_token = client.session_token
            _await(
                lambda: _caught_up(f1, pre_token),
                timeout=30.0,
                what="follower-1 catch-up before the planned failover",
            )
            promote(
                ("127.0.0.1", f1.port),
                old_primary=("127.0.0.1", primary.port),
                timeout=2.0,
            )
            promoted = True
            # The session token predates the failover; each of these must
            # reflect the session's writes or refuse typed.
            post = sum(1 for _ in range(4) if tokened_read())
            for items, key in zip(batches[half:], keys[half:]):
                client.ingest_batch(items, key=key)
                tokened_read()
            applied = client.sync()
            detail_extra = f" post-failover-reads={post}"
            new_primary = f1
            survivors = [f1]
        else:
            raise ValueError(f"unknown readpath flow {scenario.flow!r}")
    finally:
        if client is not None:
            client.close()
        # Router first (its heartbeats hold connections into the fleet),
        # then followers, then the primary — same reasoning as replica.
        if router_handle is not None:
            router = router_handle.router
            router_handle.stop()
        for handle in reversed(threads):
            handle.stop()

    assert router is not None
    rc = {
        name: counter.value for name, counter in router.metrics.counters().items()
    }
    stale_bounces = rc.get("readpath_stale_bounces", 0.0)
    follower_reads = rc.get("readpath_follower_reads", 0.0)
    primary_reads = rc.get("readpath_primary_reads", 0.0)
    reresolves = rc.get("readpath_reresolves", 0.0)
    upstream_errors = rc.get("readpath_upstream_errors", 0.0)

    # Scenario-specific evidence that the armed fault actually bit the
    # routing tier (beyond the fleet merely surviving it).
    if scenario.flow == "lagged-read":
        contract_ok = stale_bounces + primary_reads >= 1
    elif scenario.flow == "follower-crash":
        assert f1.server is not None
        contract_ok = f1.server.crashed and upstream_errors >= 1
    elif scenario.flow == "promote-under-load":
        assert f1.server is not None
        contract_ok = (
            promoted
            and f1.server.role == "primary"
            and f1.server.epoch > 1
            and _counters(f1).get("ingest_dedup_hits", 0) > 0
            and reresolves >= 1
        )
    else:  # stale-token
        assert f1.server is not None
        contract_ok = (
            promoted
            and f1.server.role == "primary"
            and f1.server.epoch > 1
            and reads_ok >= 1
        )

    sig_mismatches = [
        f"{handle.host}:{handle.port}"
        for handle in survivors
        if engine_signature(handle.server.host.engine) != expected  # type: ignore[union-attr]
    ]
    assert new_primary.server is not None
    diverged = new_primary.server.diverged

    status = (
        "recovered"
        if (
            applied == len(acts)
            and not silent_stale
            and not sig_mismatches
            and diverged is None
            and contract_ok
        )
        else "diverged"
    )
    detail = (
        f"applied={applied}/{len(acts)} reads_ok={reads_ok}"
        f" typed_denials={typed_denials} silent_stale={len(silent_stale)}"
        f" follower_reads={follower_reads:g} primary_reads={primary_reads:g}"
        f" stale_bounces={stale_bounces:g} reresolves={reresolves:g}"
        f"{detail_extra}"
    )
    if sig_mismatches:
        detail += f" sig_mismatch={sig_mismatches}"
    if diverged is not None:
        detail += f" diverged={diverged}"

    fired: List[Dict[str, object]] = []
    for plan in (primary_plan, follower_plan):
        if plan is not None:
            fired.extend(plan.fired)
    return ChaosResult(
        scenario.name,
        seed,
        status,
        scenario.expect,
        detail=detail,
        injected=fired,
    )


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------

_RUNNERS: Dict[str, Callable[[Scenario, int, Path], ChaosResult]] = {
    "pipeline": _run_pipeline,
    "service": _run_service,
    "replica": _run_replica,
    "shard": _run_shard,
    "readpath": _run_readpath,
}


def run_scenario(
    scenario: Union[Scenario, str], seed: int, workdir: Union[str, Path]
) -> ChaosResult:
    """Run one matrix cell; never raises for in-contract failures."""
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    runner = _RUNNERS[scenario.mode]
    try:
        return runner(scenario, seed, Path(workdir))
    except Exception as exc:
        # Out-of-contract escapes map to the typed "error" status so one
        # broken cell cannot hide the rest of the matrix (ChaosResult).
        return ChaosResult(
            scenario.name,
            seed,
            "error",
            scenario.expect,
            detail=f"{type(exc).__name__}: {exc}",
        )


def run_matrix(
    seeds: Sequence[int] = (0, 1, 2),
    *,
    only: Optional[Sequence[str]] = None,
    workdir: Optional[Union[str, Path]] = None,
) -> Dict[str, object]:
    """Run scenarios × seeds; returns a JSON-able report.

    ``report["silent_divergence"]`` is the count CI gates on: cells where
    recovery claimed success over state that differs from the fault-free
    oracle.  ``report["ok"]`` counts cells meeting their contract.
    """
    selected = (
        [scenario_by_name(name) for name in only]
        if only is not None
        else list(SCENARIOS)
    )
    results: List[ChaosResult] = []

    def _run_all(base: Path) -> None:
        for scenario in selected:
            for seed in seeds:
                results.append(run_scenario(scenario, seed, base))

    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="anc-chaos-") as tmp:
            _run_all(Path(tmp))
    else:
        _run_all(Path(workdir))

    return {
        "seeds": list(seeds),
        "scenarios": [s.name for s in selected],
        "total": len(results),
        "ok": sum(1 for r in results if r.ok),
        "silent_divergence": sum(1 for r in results if r.silent_divergence),
        "failures": [
            f"{r.scenario}/seed{r.seed}: {r.status} (expected {r.expect})"
            for r in results
            if not r.ok
        ],
        "results": [r.to_dict() for r in results],
    }


def report_lines(report: Mapping[str, object]) -> List[str]:
    """Human-readable rows for the CLI table."""
    lines: List[str] = []
    cells = report.get("results")
    assert isinstance(cells, list)
    for cell in cells:
        assert isinstance(cell, Mapping)
        mark = "ok " if cell["ok"] else "FAIL"
        lines.append(
            f"{mark} {str(cell['scenario']):<32} seed={cell['seed']} "
            f"{str(cell['status']):<14} {cell['detail']}"
        )
    lines.append(
        f"{report['ok']}/{report['total']} cells in contract, "
        f"{report['silent_divergence']} silent divergence(s)"
    )
    return lines


def write_report(report: Mapping[str, object], path: Union[str, Path]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
