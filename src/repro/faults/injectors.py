"""Injector catalog: what each hook site can do when a spec fires.

Each hook site in the serving stack admits a fixed set of injector
kinds; :data:`CATALOG` is the authoritative map and
:func:`validate_spec` rejects a :class:`~repro.faults.plan.FaultSpec`
naming a kind its site does not support (a typo'd kind must fail loudly
at plan construction, not silently never fire).

The byte-level corruption kinds are implemented here so the hook sites
stay one-liners: :func:`corrupt_record` turns a well-formed WAL record
into the bytes a torn/short/bit-flipped write would have left, plus a
flag for whether the simulated process dies right after.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .plan import FaultSpec

__all__ = ["CATALOG", "corrupt_record", "corrupt_payload", "validate_spec"]

#: site -> {kind: human description}.  Docs render this table verbatim.
CATALOG: Dict[str, Dict[str, str]] = {
    "wal.append": {
        "torn-tail": "write only a prefix of the record, then crash mid-append",
        "short-write": "write a truncated record that still parses partially, then crash",
        "bit-flip": "write the record with one digit corrupted, then crash",
        "fsync-loss": "acknowledge the append but persist nothing (lost page write)",
        "crash": "persist the record fully, then crash before it is applied",
    },
    "checkpoint.write": {
        "skip-manifest": "crash after the state files, before the MANIFEST",
        "truncate-engine": "write half of engine.json, then crash (no MANIFEST)",
        "corrupt-engine": "flip bytes inside engine.json but complete the MANIFEST",
        "crash": "complete the checkpoint, then crash before returning",
    },
    "index.save": {
        "truncate": "write half of the index document, then crash",
    },
    "index.load": {
        "delay": "stall the snapshot read for args['seconds'] (slow reader)",
    },
    "ingest.flush": {
        "delay": "hold a formed micro-batch for args['seconds'] before the writer sees it",
    },
    "server.accept": {
        "reset": "reset the connection before reading a single request",
    },
    "server.request": {
        "reset": "reset the connection instead of answering this request",
        "delay": "answer this request args['seconds'] late",
    },
    "server.send": {
        "stall": "stop reading the response stream (slow reader) for args['seconds']",
    },
    "server.ingest_batch": {
        "duplicate": "deliver this batch request twice (network-level duplication)",
        "delay": "hold this batch for args['seconds'] before ingesting",
    },
    "replica.fetch": {
        "stall": "hold a follower's wal_fetch response for args['seconds'] (lagging link)",
        "drop": "sever the replication connection instead of answering the fetch",
        "reorder": "deliver this fetch's records in reverse order (reordered link)",
    },
    "replica.apply": {
        "crash": "hard-crash the follower while applying a replicated record",
    },
    "router.forward": {
        "drop": "sever the router→worker link after the request bytes leave (in-flight partition)",
        "delay": "hold the forward for args['seconds'] before sending",
    },
    "router.scatter": {
        "stall": "hold shard args['shard']'s scatter arm for args['seconds'] (one slow shard)",
    },
}


def validate_spec(spec: FaultSpec) -> None:
    """Reject a spec whose site/kind pair is not in the catalog."""
    kinds = CATALOG.get(spec.site)
    if kinds is None:
        raise ValueError(
            f"unknown fault site {spec.site!r}; known: {sorted(CATALOG)}"
        )
    if spec.kind not in kinds:
        raise ValueError(
            f"site {spec.site!r} does not support kind {spec.kind!r}; "
            f"known: {sorted(kinds)}"
        )


def corrupt_payload(payload: str) -> str:
    """Flip one digit of ``payload`` (deterministic, length-preserving).

    The result still *parses* wherever a number did — that is the point:
    bit rot that syntax checks cannot catch, only checksums can.
    """
    for i in range(len(payload) - 1, -1, -1):
        ch = payload[i]
        if ch.isdigit():
            flipped = str((int(ch) + 1) % 10)
            return payload[:i] + flipped + payload[i + 1:]
    return payload


def corrupt_record(kind: str, record: str) -> Tuple[str, bool]:
    """Bytes a faulty ``wal.append`` leaves behind, and whether it crashes.

    ``record`` includes its trailing newline.  Returns ``(data, crash)``
    where ``data`` is what actually reaches the file.
    """
    body = record.rstrip("\n")
    if kind == "torn-tail":
        return body[: max(1, len(body) // 2)], True
    if kind == "short-write":
        # Keep whole leading fields (parses, but field-count is wrong).
        fields = body.split()
        return " ".join(fields[: max(1, len(fields) - 2)]) + "\n", True
    if kind == "bit-flip":
        return corrupt_payload(body) + "\n", True
    if kind == "fsync-loss":
        return "", False
    if kind == "crash":
        return record, True
    raise ValueError(f"unknown wal.append kind {kind!r}")
