"""Library-wide observability: instruments, span tracing, exposition.

Stdlib-only, shared by every layer of the stack (engines, index,
service, CLI, bench harness — see ``docs/observability.md``):

* :mod:`~repro.obs.instruments` — counters, gauges and sliding-window
  histograms behind one :class:`MetricsRegistry` (promoted out of
  ``repro.service.metrics``, which keeps a compatibility re-export);
* :mod:`~repro.obs.trace` — a low-overhead span tracer (nested phase
  timings, bounded ring buffer, deterministic sampling) plus the
  :class:`Observability` bundle components share, and the sanctioned
  ``perf_counter`` timing facade for engine code;
* :mod:`~repro.obs.export` — JSON and Prometheus text exposition of a
  registry, and Chrome ``trace_event`` dumps of a span buffer.

Everything is disabled by default: an engine without an attached
:class:`Observability` pays one attribute check per instrumented phase.
"""

from __future__ import annotations

from .export import (
    chrome_trace,
    phase_breakdown,
    render_json,
    render_prometheus,
    write_chrome_trace,
)
from .instruments import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    DISABLED_OBS,
    NULL_TRACER,
    Observability,
    Span,
    Tracer,
    perf_counter,
)

__all__ = [
    "Counter",
    "DISABLED_OBS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "chrome_trace",
    "perf_counter",
    "phase_breakdown",
    "render_json",
    "render_prometheus",
    "write_chrome_trace",
]
