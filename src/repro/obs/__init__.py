"""Library-wide observability: instruments, span tracing, exposition.

Stdlib-only, shared by every layer of the stack (engines, index,
service, CLI, bench harness — see ``docs/observability.md``):

* :mod:`~repro.obs.instruments` — counters, gauges and sliding-window
  histograms behind one :class:`MetricsRegistry` (promoted out of
  ``repro.service.metrics``, which keeps a compatibility re-export);
* :mod:`~repro.obs.trace` — a low-overhead span tracer (nested phase
  timings, bounded ring buffer, deterministic sampling) plus the
  :class:`Observability` bundle components share, and the sanctioned
  ``perf_counter`` timing facade for engine code;
* :mod:`~repro.obs.export` — JSON and Prometheus text exposition of a
  registry, and Chrome ``trace_event`` dumps of a span buffer.

Everything is disabled by default: an engine without an attached
:class:`Observability` pays one attribute check per instrumented phase.
"""

from __future__ import annotations

from .export import (
    chrome_trace,
    fleet_chrome_trace,
    fleet_trace_summary,
    phase_breakdown,
    render_json,
    render_prometheus,
    span_dicts,
    write_chrome_trace,
)
from .federate import federate_snapshots, render_prometheus_federated
from .instruments import BUCKET_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry
from .profiler import SamplingProfiler
from .propagate import TraceContext, bind_context, current_context, new_span_id
from .trace import (
    DISABLED_OBS,
    NULL_TRACER,
    Observability,
    Span,
    Tracer,
    perf_counter,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "DISABLED_OBS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "SamplingProfiler",
    "Span",
    "TraceContext",
    "Tracer",
    "bind_context",
    "chrome_trace",
    "current_context",
    "federate_snapshots",
    "fleet_chrome_trace",
    "fleet_trace_summary",
    "new_span_id",
    "perf_counter",
    "phase_breakdown",
    "render_json",
    "render_prometheus",
    "render_prometheus_federated",
    "span_dicts",
    "write_chrome_trace",
]
