"""Counters, gauges and sliding-window histograms (library-wide).

Stdlib-only on purpose (no layer of this repo adds dependencies).
Every instrument is cheap to update on the hot path — a counter is one
float add, a histogram observation is one deque append — and the
registry renders everything into a plain JSON-able dict on demand, which
the server exposes through the ``metrics`` op, the Prometheus
``metrics_text`` op (:func:`repro.obs.export.render_prometheus`) and a
periodic log line.

Histograms keep a bounded window of recent observations (default 8192)
rather than full reservoir sampling: percentiles answer "what is query
latency *now*", which is what an operator watching a live service wants,
and the bound keeps memory flat regardless of uptime.

Rates are **per-consumer**: every snapshot caller names the rate window
it owns (``rate_key``), so the operator log line, a polling dashboard
and an ad-hoc ``metrics`` op never reset each other's deltas.  Passing
``rate_key=None`` takes a fully read-only snapshot whose rates are
lifetime averages (no window state is touched at all).
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["BUCKET_BOUNDS", "Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Shared log-scale histogram bucket upper bounds (seconds): 1 µs up to
#: ~18 minutes in powers of 4.  Fixed and global so histograms snapshotted
#: in different processes merge bucket-wise with no negotiation — the
#: property metrics federation (:mod:`repro.obs.federate`) relies on.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(1e-6 * 4.0**i for i in range(16))


class Counter:
    """Monotonically increasing count (events, activations, bytes...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value, either set directly or read from a callable."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Sliding-window distribution with percentile queries.

    Tracks the lifetime count/sum exactly; percentiles are computed over
    the most recent ``window`` observations.  All read paths (``count``,
    ``mean``, ``sum``, :meth:`summary`) take the lock, so a reader racing
    an :meth:`observe` never sees a count/sum pair from two different
    observations.
    """

    __slots__ = ("name", "_window", "_count", "_sum", "_lock")

    def __init__(self, name: str, *, window: int = 8192) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self._window: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the recent window (0.0 when empty).

        Nearest-rank on the sorted window — exact for the data it holds,
        no interpolation surprises in the tails.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            data = sorted(self._window)
        if not data:
            return 0.0
        rank = max(0, min(len(data) - 1, int(round(p / 100.0 * (len(data) - 1)))))
        return data[rank]

    def bucket_counts(self) -> List[float]:
        """Window observation counts per shared log-scale bucket.

        One slot per :data:`BUCKET_BOUNDS` entry (``value <= bound``)
        plus a final +Inf overflow slot.  Counts are per-bucket, not
        cumulative, so federating N processes is element-wise addition.
        """
        counts = [0.0] * (len(BUCKET_BOUNDS) + 1)
        with self._lock:
            data = list(self._window)
        for value in data:
            counts[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1.0
        return counts

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p90 / p99 / max of the current window.

        One lock acquisition: every field derives from a single
        consistent (window, count, sum) view.
        """
        with self._lock:
            data = sorted(self._window)
            count = self._count
            total = self._sum
        out = {
            "count": float(count),
            "mean": total / count if count else 0.0,
        }
        if data:
            last = len(data) - 1
            out["p50"] = data[int(round(0.50 * last))]
            out["p90"] = data[int(round(0.90 * last))]
            out["p99"] = data[int(round(0.99 * last))]
            out["max"] = data[-1]
        else:
            out.update({"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0})
        return out


class MetricsRegistry:
    """Named instruments plus snapshot/log-line rendering.

    ``snapshot()`` additionally derives a ``*_per_s`` rate for every
    counter from the delta since the *same consumer's* previous snapshot
    (identified by ``rate_key``), so concurrent consumers — the periodic
    operator log line, a polling client, the ``metrics`` op — never
    corrupt each other's rate baselines.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._started = time.monotonic()
        #: rate_key -> (last snapshot time, counter values at that time).
        self._rate_windows: Dict[str, Tuple[float, Dict[str, float]]] = {}

    # -- instrument factories (idempotent by name) -----------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str, *, window: int = 8192) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, window=window)
        return hist

    # -- instrument views (exposition renderers read these) ---------------
    def counters(self) -> Dict[str, Counter]:
        """Name-sorted view of the registered counters."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def gauges(self) -> Dict[str, Gauge]:
        """Name-sorted view of the registered gauges."""
        return {name: self._gauges[name] for name in sorted(self._gauges)}

    def histograms(self) -> Dict[str, Histogram]:
        """Name-sorted view of the registered histograms."""
        return {name: self._histograms[name] for name in sorted(self._histograms)}

    # -- rendering --------------------------------------------------------
    def snapshot(self, *, rate_key: Optional[str] = "default") -> Dict[str, object]:
        """One JSON-able dict of everything, with per-counter rates.

        ``rate_key`` names the rate window this caller owns: the
        ``*_per_s`` figures are deltas since the previous snapshot taken
        *with the same key*, and only that window is advanced.  Pass
        ``None`` for a read-only snapshot (rates become lifetime
        averages; no registry state changes at all).
        """
        now = time.monotonic()
        doc: Dict[str, object] = {"uptime_s": now - self._started}
        counters: Dict[str, float] = {
            name: counter.value for name, counter in sorted(self._counters.items())
        }
        if rate_key is None:
            last_at, last_values = self._started, {}
        else:
            last_at, last_values = self._rate_windows.get(
                rate_key, (self._started, {})
            )
        elapsed = max(1e-9, now - last_at)
        rates: Dict[str, float] = {
            name + "_per_s": (value - last_values.get(name, 0.0)) / elapsed
            for name, value in counters.items()
        }
        if rate_key is not None:
            self._rate_windows[rate_key] = (now, dict(counters))
        doc["counters"] = counters
        doc["rates"] = rates
        doc["gauges"] = {
            name: gauge.value for name, gauge in sorted(self._gauges.items())
        }
        doc["histograms"] = {
            name: {**hist.summary(), "buckets": hist.bucket_counts()}
            for name, hist in sorted(self._histograms.items())
        }
        return doc

    def log_line(self) -> str:
        """A compact one-line rendering for the periodic operator log.

        Owns its own rate window (``"log"``), so clients snapshotting the
        registry never skew the logged ``*_per_s`` figures.
        """
        doc = self.snapshot(rate_key="log")
        parts: List[str] = [f"up={doc['uptime_s']:.0f}s"]
        for name, rate in doc["rates"].items():  # type: ignore[union-attr]
            parts.append(f"{name}={rate:.1f}")
        for name, value in doc["gauges"].items():  # type: ignore[union-attr]
            parts.append(f"{name}={value:g}")
        for name, summary in doc["histograms"].items():  # type: ignore[union-attr]
            parts.append(
                f"{name}[p50={summary['p50'] * 1e3:.1f}ms "
                f"p99={summary['p99'] * 1e3:.1f}ms]"
            )
        return " ".join(parts)
