"""Cross-process trace-context propagation.

A fleet request crosses the client, the shard router, N workers and the
replica chain (docs/sharding.md, docs/replication.md).  To see one
request as one timeline, every wire payload may carry a ``trace``
envelope field::

    {"op": "clusters", "trace": {"id": "t3f1a-2", "span": "3f1a.7",
                                 "sampled": true}}

* ``id`` — the trace id, minted once by the originating
  :class:`~repro.service.client.ServiceClient` and copied verbatim by
  every hop;
* ``span`` — the *parent* span id: the sender's wire span, so the
  receiver's span can point back at it;
* ``sampled`` — the fleet-wide record/forward decision, made once at
  the root.  Unsampled contexts still propagate (so a downstream hop
  could flip sampling on in the future) but record nothing — that is
  the <5 % dark budget (``benchmarks/bench_obs_overhead.py``).

The current binding lives in a :class:`contextvars.ContextVar`, **not**
a thread-local: the server handles many connections as interleaved
asyncio tasks on one loop thread, and each task runs in its own Context
copy, so bindings cannot leak between concurrent requests.  Engine
spans recorded on the writer thread deliberately stay unparented — they
show up in the worker's process lane of the merged Chrome trace, while
tree connectivity comes from the wire spans
(:meth:`repro.obs.trace.Tracer.wire_span`).

Span ids are ``<pid-hex>.<counter-hex>`` — unique fleet-wide on one
machine without coordination.  Trace ids are minted by the client from
its session id, so they are unique per client and stable in replays.
"""

from __future__ import annotations

import itertools
import os
from contextvars import ContextVar, Token
from typing import Dict, Optional

__all__ = [
    "TraceContext",
    "bind_context",
    "current_context",
    "new_span_id",
    "unbind_context",
]

_SPAN_IDS = itertools.count(1)


def new_span_id() -> str:
    """A fleet-unique span id (``<pid-hex>.<counter-hex>``)."""
    return f"{os.getpid():x}.{next(_SPAN_IDS):x}"


class TraceContext:
    """One hop's view of a distributed trace (immutable)."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        #: The sender-side span id — the *parent* of whatever span the
        #: receiver opens for this context.
        self.span_id = span_id
        self.sampled = sampled

    def child(self, span_id: str) -> "TraceContext":
        """The context a span opened under this one hands downstream."""
        return TraceContext(self.trace_id, span_id, self.sampled)

    def to_wire(self) -> Dict[str, object]:
        """The ``trace`` envelope field for an outgoing payload."""
        return {"id": self.trace_id, "span": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, obj: object) -> Optional["TraceContext"]:
        """Parse a ``trace`` envelope field; ``None`` when absent/bad.

        Malformed contexts are dropped rather than rejected: tracing is
        telemetry, and a request must never fail because its trace
        stamp is garbled.
        """
        if not isinstance(obj, dict):
            return None
        trace_id = obj.get("id")
        span_id = obj.get("span")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        if not isinstance(span_id, str):
            span_id = ""
        return cls(trace_id, span_id, bool(obj.get("sampled")))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(id={self.trace_id!r}, span={self.span_id!r}, "
            f"sampled={self.sampled})"
        )


#: The task's current trace binding (None outside any traced request).
_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "anc_trace_context", default=None
)

#: Wire-span nesting depth within the current task (router request ->
#: scatter -> forward nest without touching any thread-local).
_DEPTH: ContextVar[int] = ContextVar("anc_trace_depth", default=0)


def current_context() -> Optional[TraceContext]:
    """The trace context bound to the running task, if any."""
    return _CURRENT.get()


def bind_context(ctx: Optional[TraceContext]) -> "Token[Optional[TraceContext]]":
    """Bind ``ctx`` for the current task; returns the reset token."""
    return _CURRENT.set(ctx)


def unbind_context(token: "Token[Optional[TraceContext]]") -> None:
    """Restore the binding captured by :func:`bind_context`."""
    _CURRENT.reset(token)
