"""Low-overhead span tracing: where does one activation's time go?

A :class:`Tracer` records *spans* — named, nested phase timings — into a
bounded ring buffer.  The design constraints, in order:

1. **Disabled is free.**  ``tracer.span(...)`` on a disabled tracer is
   one attribute check plus returning a shared no-op context manager; no
   allocation, no clock read.  Engines are instrumented unconditionally
   and pay nothing until an operator turns tracing on.
2. **Enabled is cheap.**  A live span is two ``perf_counter`` reads and
   one deque append (under a lock, at span *exit* only).  The ring
   buffer (``capacity`` spans) keeps memory flat on unbounded streams —
   old spans fall off the back.
3. **Deterministic sampling.**  ``sample=0.25`` records every 4th
   top-level span via a per-thread accumulator — no RNG, so two runs of
   the same stream trace the same activations.  Nested spans follow
   their root's decision (a sampled activation is traced *whole*).

Spans carry start times relative to the tracer's epoch, a nesting depth
and the recording thread id, which is exactly what the Chrome
``trace_event`` export (:func:`repro.obs.export.chrome_trace`) needs.

This module also re-exports :func:`time.perf_counter` as **the timing
facade for engine code**: ``repro.core`` / ``repro.index`` must never
read the machine clock for *state* (WAL replay must be byte-identical —
see the ``no-wall-clock-in-engine`` lint rule), but importing
``perf_counter`` from here marks a read as pure measurement, which the
rule's obs-facade allowlist admits.

:class:`Observability` bundles one registry + one tracer so a component
tree (engine → index → queries → watcher) shares a single wiring handle;
:data:`DISABLED_OBS` is the inert default every component starts with.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from time import time as _wall_time
from typing import ContextManager, Deque, Dict, List, Optional, Tuple

from .instruments import MetricsRegistry
from .propagate import (
    TraceContext,
    _DEPTH,
    bind_context,
    current_context,
    new_span_id,
    unbind_context,
)

__all__ = [
    "DISABLED_OBS",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "perf_counter",
]


class Span:
    """One completed phase timing (immutable once recorded).

    ``trace_id`` / ``span_id`` / ``parent_id`` are ``None`` for
    engine-internal spans; wire spans
    (:meth:`Tracer.wire_span`) carry all three so the fleet-trace merge
    (:func:`repro.obs.export.fleet_chrome_trace`) can stitch one
    request's hops across processes.
    """

    __slots__ = (
        "name",
        "start",
        "duration",
        "depth",
        "tid",
        "args",
        "trace_id",
        "span_id",
        "parent_id",
    )

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        tid: int,
        args: Dict[str, object],
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self.name = name
        #: Seconds since the tracer's epoch.
        self.start = start
        self.duration = duration
        #: Nesting depth (0 = top-level).
        self.depth = depth
        #: Recording thread id.
        self.tid = tid
        self.args = args
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, start={self.start:.6f}, "
            f"dur={self.duration:.6f}, depth={self.depth})"
        )


class _NullSpan:
    """Shared no-op context manager — the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _MutedSpan:
    """Context manager for a span under an unsampled root.

    Records nothing but maintains the per-thread mute depth, so every
    nested span of an unsampled top-level span is skipped with it.
    """

    __slots__ = ("_local",)

    def __init__(self, local: threading.local) -> None:
        self._local = local

    def __enter__(self) -> "_MutedSpan":
        self._local.muted = getattr(self._local, "muted", 0) + 1
        return self

    def __exit__(self, *exc: object) -> bool:
        self._local.muted -= 1
        return False


class _LiveSpan:
    """Context manager that times one phase and records it on exit."""

    __slots__ = ("_tracer", "_local", "name", "args", "depth", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        local: threading.local,
        name: str,
        args: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self._local = local
        self.name = name
        self.args = args

    def __enter__(self) -> "_LiveSpan":
        local = self._local
        self.depth = getattr(local, "depth", 0)
        local.depth = self.depth + 1
        open_map = self._tracer._open
        if open_map is not None:
            open_map.setdefault(threading.get_ident(), []).append(self.name)
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = perf_counter()
        self._local.depth = self.depth
        open_map = self._tracer._open
        if open_map is not None:
            stack = open_map.get(threading.get_ident())
            if stack:
                stack.pop()
        self._tracer._record(
            self.name, self._t0, end - self._t0, self.depth, self.args
        )
        return False


class _WireSpan:
    """A protocol-boundary span carrying distributed trace identity.

    Opened around one hop of a traced request (client request, router
    forward/scatter, server handler, replica fetch).  On entry it binds
    the *child* context — so payloads stamped inside (and nested wire
    spans) parent correctly — and on exit records a :class:`Span` with
    trace/span/parent ids.  Depth is tracked in a ``ContextVar``, never
    a thread-local: concurrent asyncio requests interleave on one loop
    thread.
    """

    __slots__ = ("_tracer", "name", "args", "_child", "_parent_id", "_tokens", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        args: Dict[str, object],
        child: TraceContext,
        parent_id: str,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._child = child
        self._parent_id = parent_id

    def __enter__(self) -> "_WireSpan":
        self._tokens = (bind_context(self._child), _DEPTH.set(_DEPTH.get() + 1))
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = perf_counter()
        ctx_token, depth_token = self._tokens
        depth = _DEPTH.get() - 1
        _DEPTH.reset(depth_token)
        unbind_context(ctx_token)
        self._tracer._record(
            self.name,
            self._t0,
            end - self._t0,
            depth,
            self.args,
            trace_id=self._child.trace_id,
            span_id=self._child.span_id,
            parent_id=self._parent_id,
        )
        return False


class _PropagateSpan:
    """Bind-only guard for an unsampled context: propagate, record nothing."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: TraceContext) -> None:
        self._ctx = ctx

    def __enter__(self) -> "_PropagateSpan":
        self._token = bind_context(self._ctx)
        return self

    def __exit__(self, *exc: object) -> bool:
        unbind_context(self._token)
        return False


class Tracer:
    """Nested span recorder with a bounded buffer and deterministic sampling.

    Parameters
    ----------
    enabled:
        Initial state; :meth:`enable` / :meth:`disable` flip it live.
    capacity:
        Ring-buffer bound — only the most recent ``capacity`` spans are
        kept (memory stays flat on unbounded streams).
    sample:
        Fraction of *top-level* spans to record, in ``(0, 1]``.  Applied
        with a deterministic per-thread accumulator; nested spans follow
        their root's decision.
    """

    def __init__(
        self, *, enabled: bool = False, capacity: int = 8192, sample: float = 1.0
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.sample = 1.0
        self.set_sample(sample)
        self._epoch = perf_counter()
        #: Wall-clock time of the tracer's epoch — captured back-to-back
        #: with ``_epoch`` so exported spans can be placed on an absolute
        #: timeline shared by every process on the machine (the
        #: fleet-trace merge aligns lanes with it).
        self.epoch_unix = _wall_time()
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        #: tid -> names of currently open spans, maintained only while a
        #: profiler has called :meth:`track_open` (dark otherwise).
        self._open: Optional[Dict[int, List[str]]] = None
        #: Spans recorded over the tracer's lifetime (ring-buffer evictions
        #: do not decrement this).
        self.recorded = 0
        #: Top-level spans skipped by sampling.
        self.sampled_out = 0

    # -- configuration ----------------------------------------------------
    def enable(self) -> None:
        """Start recording (safe to call at any time)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; the buffer keeps its spans."""
        self.enabled = False

    def set_sample(self, sample: float) -> None:
        """Set the top-level sampling fraction (in ``(0, 1]``)."""
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        self.sample = sample

    def track_open(self, enabled: bool) -> None:
        """Maintain (or stop maintaining) the per-thread open-span stack.

        The sampling profiler (:mod:`repro.obs.profiler`) turns this on
        to attribute stack samples to engine phases; it is off by
        default so the live-span hot path pays only a ``None`` check.
        """
        self._open = {} if enabled else None

    def open_stack(self, tid: int) -> Tuple[str, ...]:
        """Names of the spans currently open on thread ``tid``."""
        open_map = self._open
        if not open_map:
            return ()
        return tuple(open_map.get(tid, ()))

    # -- recording --------------------------------------------------------
    def span(self, name: str, **args: object) -> ContextManager[object]:
        """Context manager timing one phase.

        Returns a shared no-op when disabled (the one-attribute-check
        fast path), a muted guard under an unsampled root, or a live
        span otherwise.  Usable from any thread; nesting depth is
        tracked per thread.
        """
        if not self.enabled:
            return _NULL_SPAN
        local = self._local
        if getattr(local, "muted", 0):
            return _MutedSpan(local)
        if self.sample < 1.0 and getattr(local, "depth", 0) == 0:
            acc = getattr(local, "acc", 0.0) + self.sample
            if acc < 1.0:
                local.acc = acc
                self.sampled_out += 1
                return _MutedSpan(local)
            local.acc = acc - 1.0
        return _LiveSpan(self, local, name, args)

    def wire_span(
        self,
        name: str,
        ctx: Optional[TraceContext] = None,
        **args: object,
    ) -> ContextManager[object]:
        """A protocol-boundary span joined to a distributed trace.

        ``ctx`` is the trace context that arrived on the wire; when
        omitted, the task's current binding
        (:func:`repro.obs.propagate.current_context`) is used, which is
        how a router's forward spans nest under its request span.

        Semantics differ from :meth:`span` in two deliberate ways:

        * **The sampled flag is the switch, not ``self.enabled``.**  A
          sampled context records on every hop even if this process
          never ran ``trace start`` — the fleet trace must not require
          coordinating N processes' tracer states.  An unsampled
          context binds (so downstream stamps stay correct) and records
          nothing; no context at all is a shared no-op.
        * **Task-safe, not thread-scoped.**  Binding and depth live in
          ``ContextVar``s because concurrent requests interleave as
          asyncio tasks on one loop thread.
        """
        if ctx is None:
            ctx = current_context()
            if ctx is None:
                return _NULL_SPAN
        if not ctx.sampled:
            return _PropagateSpan(ctx)
        return _WireSpan(self, name, args, ctx.child(new_span_id()), ctx.span_id)

    def record(
        self,
        name: str,
        *,
        duration: float,
        start: Optional[float] = None,
        depth: int = 0,
        **args: object,
    ) -> None:
        """Record an externally timed measurement as a completed span.

        For callers that already hold a duration (the bench harness's
        ``timed()``).  ``start`` is a ``perf_counter`` value; when omitted
        the span is laid out as ending now.  No-op when disabled;
        sampling does not apply.
        """
        if not self.enabled:
            return
        if start is None:
            start = perf_counter() - duration
        self._record(name, start, duration, depth, dict(args))

    def _record(
        self,
        name: str,
        t0: float,
        duration: float,
        depth: int,
        args: Dict[str, object],
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        span = Span(
            name,
            t0 - self._epoch,
            duration,
            depth,
            threading.get_ident(),
            dict(args) if args else {},
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
        )
        with self._lock:
            self._spans.append(span)
            self.recorded += 1

    # -- reading ----------------------------------------------------------
    def spans(self) -> List[Span]:
        """The buffered spans, oldest first (the buffer is kept)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Return the buffered spans and clear the buffer."""
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
        return out

    def __len__(self) -> int:
        return len(self._spans)

    def status(self) -> Dict[str, object]:
        """JSON-able state summary (the server's ``trace`` op returns it)."""
        return {
            "enabled": self.enabled,
            "sample": self.sample,
            "capacity": self.capacity,
            "buffered": len(self._spans),
            "recorded": self.recorded,
            "sampled_out": self.sampled_out,
        }


#: Shared inert tracer — the default every instrumented component binds.
NULL_TRACER = Tracer(enabled=False, capacity=1)


class Observability:
    """One registry + one tracer, shared down a component tree.

    An engine's ``attach_obs`` hands the same bundle to its metric,
    index, query engine and watcher, so all of them register into one
    registry and trace into one buffer.  ``enabled=False`` (the
    :data:`DISABLED_OBS` default) means components skip registration
    entirely and keep the no-op tracer fast path.
    """

    __slots__ = ("registry", "tracer", "enabled")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        *,
        enabled: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.enabled = enabled


#: The inert default bundle: disabled, with the shared no-op tracer.
DISABLED_OBS = Observability(tracer=NULL_TRACER, enabled=False)
