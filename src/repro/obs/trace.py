"""Low-overhead span tracing: where does one activation's time go?

A :class:`Tracer` records *spans* — named, nested phase timings — into a
bounded ring buffer.  The design constraints, in order:

1. **Disabled is free.**  ``tracer.span(...)`` on a disabled tracer is
   one attribute check plus returning a shared no-op context manager; no
   allocation, no clock read.  Engines are instrumented unconditionally
   and pay nothing until an operator turns tracing on.
2. **Enabled is cheap.**  A live span is two ``perf_counter`` reads and
   one deque append (under a lock, at span *exit* only).  The ring
   buffer (``capacity`` spans) keeps memory flat on unbounded streams —
   old spans fall off the back.
3. **Deterministic sampling.**  ``sample=0.25`` records every 4th
   top-level span via a per-thread accumulator — no RNG, so two runs of
   the same stream trace the same activations.  Nested spans follow
   their root's decision (a sampled activation is traced *whole*).

Spans carry start times relative to the tracer's epoch, a nesting depth
and the recording thread id, which is exactly what the Chrome
``trace_event`` export (:func:`repro.obs.export.chrome_trace`) needs.

This module also re-exports :func:`time.perf_counter` as **the timing
facade for engine code**: ``repro.core`` / ``repro.index`` must never
read the machine clock for *state* (WAL replay must be byte-identical —
see the ``no-wall-clock-in-engine`` lint rule), but importing
``perf_counter`` from here marks a read as pure measurement, which the
rule's obs-facade allowlist admits.

:class:`Observability` bundles one registry + one tracer so a component
tree (engine → index → queries → watcher) shares a single wiring handle;
:data:`DISABLED_OBS` is the inert default every component starts with.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import ContextManager, Deque, Dict, List, Optional

from .instruments import MetricsRegistry

__all__ = [
    "DISABLED_OBS",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "perf_counter",
]


class Span:
    """One completed phase timing (immutable once recorded)."""

    __slots__ = ("name", "start", "duration", "depth", "tid", "args")

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        tid: int,
        args: Dict[str, object],
    ) -> None:
        self.name = name
        #: Seconds since the tracer's epoch.
        self.start = start
        self.duration = duration
        #: Nesting depth (0 = top-level).
        self.depth = depth
        #: Recording thread id.
        self.tid = tid
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, start={self.start:.6f}, "
            f"dur={self.duration:.6f}, depth={self.depth})"
        )


class _NullSpan:
    """Shared no-op context manager — the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _MutedSpan:
    """Context manager for a span under an unsampled root.

    Records nothing but maintains the per-thread mute depth, so every
    nested span of an unsampled top-level span is skipped with it.
    """

    __slots__ = ("_local",)

    def __init__(self, local: threading.local) -> None:
        self._local = local

    def __enter__(self) -> "_MutedSpan":
        self._local.muted = getattr(self._local, "muted", 0) + 1
        return self

    def __exit__(self, *exc: object) -> bool:
        self._local.muted -= 1
        return False


class _LiveSpan:
    """Context manager that times one phase and records it on exit."""

    __slots__ = ("_tracer", "_local", "name", "args", "depth", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        local: threading.local,
        name: str,
        args: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self._local = local
        self.name = name
        self.args = args

    def __enter__(self) -> "_LiveSpan":
        local = self._local
        self.depth = getattr(local, "depth", 0)
        local.depth = self.depth + 1
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = perf_counter()
        self._local.depth = self.depth
        self._tracer._record(
            self.name, self._t0, end - self._t0, self.depth, self.args
        )
        return False


class Tracer:
    """Nested span recorder with a bounded buffer and deterministic sampling.

    Parameters
    ----------
    enabled:
        Initial state; :meth:`enable` / :meth:`disable` flip it live.
    capacity:
        Ring-buffer bound — only the most recent ``capacity`` spans are
        kept (memory stays flat on unbounded streams).
    sample:
        Fraction of *top-level* spans to record, in ``(0, 1]``.  Applied
        with a deterministic per-thread accumulator; nested spans follow
        their root's decision.
    """

    def __init__(
        self, *, enabled: bool = False, capacity: int = 8192, sample: float = 1.0
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.sample = 1.0
        self.set_sample(sample)
        self._epoch = perf_counter()
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Spans recorded over the tracer's lifetime (ring-buffer evictions
        #: do not decrement this).
        self.recorded = 0
        #: Top-level spans skipped by sampling.
        self.sampled_out = 0

    # -- configuration ----------------------------------------------------
    def enable(self) -> None:
        """Start recording (safe to call at any time)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; the buffer keeps its spans."""
        self.enabled = False

    def set_sample(self, sample: float) -> None:
        """Set the top-level sampling fraction (in ``(0, 1]``)."""
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        self.sample = sample

    # -- recording --------------------------------------------------------
    def span(self, name: str, **args: object) -> ContextManager[object]:
        """Context manager timing one phase.

        Returns a shared no-op when disabled (the one-attribute-check
        fast path), a muted guard under an unsampled root, or a live
        span otherwise.  Usable from any thread; nesting depth is
        tracked per thread.
        """
        if not self.enabled:
            return _NULL_SPAN
        local = self._local
        if getattr(local, "muted", 0):
            return _MutedSpan(local)
        if self.sample < 1.0 and getattr(local, "depth", 0) == 0:
            acc = getattr(local, "acc", 0.0) + self.sample
            if acc < 1.0:
                local.acc = acc
                self.sampled_out += 1
                return _MutedSpan(local)
            local.acc = acc - 1.0
        return _LiveSpan(self, local, name, args)

    def record(
        self,
        name: str,
        *,
        duration: float,
        start: Optional[float] = None,
        depth: int = 0,
        **args: object,
    ) -> None:
        """Record an externally timed measurement as a completed span.

        For callers that already hold a duration (the bench harness's
        ``timed()``).  ``start`` is a ``perf_counter`` value; when omitted
        the span is laid out as ending now.  No-op when disabled;
        sampling does not apply.
        """
        if not self.enabled:
            return
        if start is None:
            start = perf_counter() - duration
        self._record(name, start, duration, depth, dict(args))

    def _record(
        self,
        name: str,
        t0: float,
        duration: float,
        depth: int,
        args: Dict[str, object],
    ) -> None:
        span = Span(
            name,
            t0 - self._epoch,
            duration,
            depth,
            threading.get_ident(),
            dict(args) if args else {},
        )
        with self._lock:
            self._spans.append(span)
            self.recorded += 1

    # -- reading ----------------------------------------------------------
    def spans(self) -> List[Span]:
        """The buffered spans, oldest first (the buffer is kept)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Return the buffered spans and clear the buffer."""
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
        return out

    def __len__(self) -> int:
        return len(self._spans)

    def status(self) -> Dict[str, object]:
        """JSON-able state summary (the server's ``trace`` op returns it)."""
        return {
            "enabled": self.enabled,
            "sample": self.sample,
            "capacity": self.capacity,
            "buffered": len(self._spans),
            "recorded": self.recorded,
            "sampled_out": self.sampled_out,
        }


#: Shared inert tracer — the default every instrumented component binds.
NULL_TRACER = Tracer(enabled=False, capacity=1)


class Observability:
    """One registry + one tracer, shared down a component tree.

    An engine's ``attach_obs`` hands the same bundle to its metric,
    index, query engine and watcher, so all of them register into one
    registry and trace into one buffer.  ``enabled=False`` (the
    :data:`DISABLED_OBS` default) means components skip registration
    entirely and keep the no-op tracer fast path.
    """

    __slots__ = ("registry", "tracer", "enabled")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        *,
        enabled: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.enabled = enabled


#: The inert default bundle: disabled, with the shared no-op tracer.
DISABLED_OBS = Observability(tracer=NULL_TRACER, enabled=False)
