"""Exposition: registries as JSON / Prometheus text, spans as Chrome traces.

Three consumers, three formats:

* :func:`render_json` — the registry snapshot dict (what the server's
  ``metrics`` op and the CLI's ``--metrics-out`` serve);
* :func:`render_prometheus` — the Prometheus text exposition format
  (``metrics_text`` op, ``repro-anc stats``): counters as ``_total``,
  gauges verbatim, histograms as summaries with quantile labels;
* :func:`chrome_trace` — a span buffer as Chrome ``trace_event`` JSON
  ("X" complete events, microsecond timestamps), loadable in
  ``chrome://tracing`` / Perfetto to see one activation's nested phases.

:func:`phase_breakdown` aggregates a span list into per-phase
count/total/mean/max — the compact form the bench harness folds into
every ``bench_results/*.json``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .instruments import MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "chrome_trace",
    "phase_breakdown",
    "render_json",
    "render_prometheus",
    "write_chrome_trace",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram window percentiles exposed as Prometheus summary quantiles.
_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))


def _metric_name(name: str, namespace: str = "") -> str:
    """A valid Prometheus metric name for an instrument name."""
    out = _NAME_SANITIZER.sub("_", name)
    if namespace:
        out = f"{_NAME_SANITIZER.sub('_', namespace)}_{out}"
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    """A float in Prometheus text form (repr round-trips exactly)."""
    return repr(float(value))


def render_json(
    registry: MetricsRegistry, *, rate_key: Optional[str] = None
) -> Dict[str, object]:
    """The registry snapshot as a JSON-able dict (read-only by default)."""
    return registry.snapshot(rate_key=rate_key)


def render_prometheus(registry: MetricsRegistry, *, namespace: str = "") -> str:
    """The registry in the Prometheus text exposition format (version 0.0.4).

    Counters get the conventional ``_total`` suffix; histograms render as
    summaries over their sliding window (quantile-labelled samples plus
    the exact lifetime ``_sum`` / ``_count``).  Reading instruments is
    the only side effect — no rate window is touched.
    """
    lines: List[str] = []
    for name, counter in registry.counters().items():
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counter.value)}")
    for name, gauge in registry.gauges().items():
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge.value)}")
    for name, hist in registry.histograms().items():
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} summary")
        for quantile, _ in _QUANTILES:
            value = hist.percentile(quantile * 100.0)
            lines.append(f'{metric}{{quantile="{quantile:g}"}} {_fmt(value)}')
        lines.append(f"{metric}_sum {_fmt(hist.sum)}")
        lines.append(f"{metric}_count {_fmt(float(hist.count))}")
    return "\n".join(lines) + "\n" if lines else ""


def chrome_trace(
    spans: Union[Tracer, Iterable[Span]], *, pid: int = 0
) -> Dict[str, object]:
    """A span buffer as a Chrome ``trace_event`` JSON document.

    Every span becomes one "X" (complete) event with microsecond
    ``ts``/``dur``; the nesting depth rides along in ``args`` so flat
    viewers can reconstruct the hierarchy.  Accepts a tracer (reads its
    buffer without draining) or any span iterable.
    """
    if isinstance(spans, Tracer):
        spans = spans.spans()
    events: List[Dict[str, object]] = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": pid,
                "tid": span.tid,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": {**span.args, "depth": span.depth},
            }
        )
    events.sort(key=lambda e: (e["tid"], e["ts"]))  # type: ignore[index]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Union[Tracer, Iterable[Span]], *, pid: int = 0
) -> Path:
    """Dump :func:`chrome_trace` to ``path``; returns the path."""
    target = Path(path)
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, pid=pid), fh, indent=2, sort_keys=True)
    return target


def phase_breakdown(
    spans: Union[Tracer, Iterable[Span]]
) -> Dict[str, Dict[str, float]]:
    """Aggregate spans into ``{phase: {count, total_s, mean_s, max_s}}``.

    Phases are span names, sorted for stable JSON output.  This is the
    per-phase breakdown the bench harness appends to every saved result.
    """
    if isinstance(spans, Tracer):
        spans = spans.spans()
    acc: Dict[str, Dict[str, float]] = {}
    for span in spans:
        entry = acc.get(span.name)
        if entry is None:
            entry = acc[span.name] = {"count": 0.0, "total_s": 0.0, "max_s": 0.0}
        entry["count"] += 1.0
        entry["total_s"] += span.duration
        if span.duration > entry["max_s"]:
            entry["max_s"] = span.duration
    for entry in acc.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return {name: acc[name] for name in sorted(acc)}
