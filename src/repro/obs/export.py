"""Exposition: registries as JSON / Prometheus text, spans as Chrome traces.

Three consumers, three formats:

* :func:`render_json` — the registry snapshot dict (what the server's
  ``metrics`` op and the CLI's ``--metrics-out`` serve);
* :func:`render_prometheus` — the Prometheus text exposition format
  (``metrics_text`` op, ``repro-anc stats``): counters as ``_total``,
  gauges verbatim, histograms as summaries with quantile labels;
* :func:`chrome_trace` — a span buffer as Chrome ``trace_event`` JSON
  ("X" complete events, microsecond timestamps), loadable in
  ``chrome://tracing`` / Perfetto to see one activation's nested phases.

:func:`phase_breakdown` aggregates a span list into per-phase
count/total/mean/max — the compact form the bench harness folds into
every ``bench_results/*.json``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .instruments import MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "chrome_trace",
    "fleet_chrome_trace",
    "fleet_trace_summary",
    "phase_breakdown",
    "render_json",
    "render_prometheus",
    "span_dicts",
    "write_chrome_trace",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram window percentiles exposed as Prometheus summary quantiles.
_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))


def _metric_name(name: str, namespace: str = "") -> str:
    """A valid Prometheus metric name for an instrument name."""
    out = _NAME_SANITIZER.sub("_", name)
    if namespace:
        out = f"{_NAME_SANITIZER.sub('_', namespace)}_{out}"
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    """A float in Prometheus text form (repr round-trips exactly)."""
    return repr(float(value))


def render_json(
    registry: MetricsRegistry, *, rate_key: Optional[str] = None
) -> Dict[str, object]:
    """The registry snapshot as a JSON-able dict (read-only by default)."""
    return registry.snapshot(rate_key=rate_key)


def render_prometheus(registry: MetricsRegistry, *, namespace: str = "") -> str:
    """The registry in the Prometheus text exposition format (version 0.0.4).

    Counters get the conventional ``_total`` suffix; histograms render as
    summaries over their sliding window (quantile-labelled samples plus
    the exact lifetime ``_sum`` / ``_count``).  Reading instruments is
    the only side effect — no rate window is touched.
    """
    lines: List[str] = []
    for name, counter in registry.counters().items():
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counter.value)}")
    for name, gauge in registry.gauges().items():
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge.value)}")
    for name, hist in registry.histograms().items():
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} summary")
        for quantile, _ in _QUANTILES:
            value = hist.percentile(quantile * 100.0)
            lines.append(f'{metric}{{quantile="{quantile:g}"}} {_fmt(value)}')
        lines.append(f"{metric}_sum {_fmt(hist.sum)}")
        lines.append(f"{metric}_count {_fmt(float(hist.count))}")
    return "\n".join(lines) + "\n" if lines else ""


def chrome_trace(
    spans: Union[Tracer, Iterable[Span]], *, pid: int = 0
) -> Dict[str, object]:
    """A span buffer as a Chrome ``trace_event`` JSON document.

    Every span becomes one "X" (complete) event with microsecond
    ``ts``/``dur``; the nesting depth rides along in ``args`` so flat
    viewers can reconstruct the hierarchy.  Accepts a tracer (reads its
    buffer without draining) or any span iterable.
    """
    if isinstance(spans, Tracer):
        spans = spans.spans()
    events: List[Dict[str, object]] = []
    for span in spans:
        args: Dict[str, object] = {**span.args, "depth": span.depth}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": pid,
                "tid": span.tid,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": args,
            }
        )
    events.sort(key=lambda e: (e["tid"], e["ts"]))  # type: ignore[index]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Union[Tracer, Iterable[Span]], *, pid: int = 0
) -> Path:
    """Dump :func:`chrome_trace` to ``path``; returns the path."""
    target = Path(path)
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, pid=pid), fh, indent=2, sort_keys=True)
    return target


def span_dicts(
    spans: Union[Tracer, Iterable[Span]], *, epoch_unix: float = 0.0
) -> List[Dict[str, object]]:
    """Spans as JSON-able dicts with *absolute* unix start times.

    This is the ``trace_fetch`` wire format: each process converts its
    tracer-epoch-relative starts to wall-clock seconds using the
    tracer's ``epoch_unix``, so per-process buffers land on one shared
    timeline (same machine, same clock) and the fleet merge needs no
    further alignment.  Wire spans carry their trace/span/parent ids.
    """
    if isinstance(spans, Tracer):
        epoch_unix = spans.epoch_unix
        spans = spans.spans()
    out: List[Dict[str, object]] = []
    for span in spans:
        doc: Dict[str, object] = {
            "name": span.name,
            "start": epoch_unix + span.start,
            "dur": span.duration,
            "depth": span.depth,
            "tid": span.tid,
            "args": dict(span.args),
        }
        if span.trace_id is not None:
            doc["trace"] = span.trace_id
            doc["span"] = span.span_id
            doc["parent"] = span.parent_id
        out.append(doc)
    return out


def fleet_chrome_trace(
    processes: Iterable[Dict[str, object]], *, trace_id: Optional[str] = None
) -> Dict[str, object]:
    """Merge per-process span buffers into one Chrome trace document.

    ``processes`` is what the router's ``trace_fetch`` gather returns:
    each entry holds a display ``name`` (``client`` / ``router`` /
    ``shard-0`` / ``replica:<id>``), the OS ``pid``, and
    :func:`span_dicts`-encoded ``spans``.  The merged document gives
    every process its own pid lane (named via ``process_name`` metadata
    events), places all spans on a common timeline anchored at the
    earliest span, and draws Chrome flow arrows between every wire
    span and its parent — the client→router→worker→replica causality,
    visible in one Perfetto view.  ``trace_id`` filters to one request
    tree (engine spans, which carry no trace id, are kept only when no
    filter is given).
    """
    procs: List[Dict[str, object]] = []
    t_min: Optional[float] = None
    for proc in processes:
        spans = [
            s
            for s in proc.get("spans", ())  # type: ignore[union-attr]
            if trace_id is None or s.get("trace") == trace_id
        ]
        for span in spans:
            start = float(span["start"])  # type: ignore[arg-type]
            t_min = start if t_min is None else min(t_min, start)
        procs.append({**proc, "spans": spans})
    origin = t_min or 0.0
    events: List[Dict[str, object]] = []
    slice_of: Dict[str, Dict[str, object]] = {}
    for index, proc in enumerate(procs):
        pid = int(proc.get("pid", index))  # type: ignore[arg-type]
        name = str(proc.get("name", f"process-{index}"))
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": index},
            }
        )
        for span in proc["spans"]:  # type: ignore[union-attr]
            args = dict(span.get("args") or {})
            args["depth"] = span.get("depth", 0)
            for key, arg_key in (("trace", "trace_id"), ("span", "span_id"), ("parent", "parent_id")):
                if span.get(key):
                    args[arg_key] = span[key]
            event = {
                "name": span["name"],
                "ph": "X",
                "pid": pid,
                "tid": span.get("tid", 0),
                "ts": (float(span["start"]) - origin) * 1e6,  # type: ignore[arg-type]
                "dur": float(span["dur"]) * 1e6,  # type: ignore[arg-type]
                "args": args,
            }
            events.append(event)
            span_id = span.get("span")
            if isinstance(span_id, str) and span_id:
                slice_of[span_id] = event
    # Flow arrows: child wire span points back at its parent's slice.
    flows: List[Dict[str, object]] = []
    for span_id, event in sorted(slice_of.items()):
        parent_id = event["args"].get("parent_id")  # type: ignore[union-attr]
        parent = slice_of.get(parent_id) if isinstance(parent_id, str) else None
        if parent is None:
            continue
        flow_id = f"{parent_id}->{span_id}"
        flows.append(
            {
                "name": "trace",
                "cat": "trace",
                "ph": "s",
                "id": flow_id,
                "pid": parent["pid"],
                "tid": parent["tid"],
                "ts": parent["ts"],
            }
        )
        flows.append(
            {
                "name": "trace",
                "cat": "trace",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "pid": event["pid"],
                "tid": event["tid"],
                "ts": event["ts"],
            }
        )
    events.extend(flows)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def fleet_trace_summary(
    processes: Iterable[Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Per-trace-id connectivity summary of a ``trace_fetch`` gather.

    For each trace id seen across the fleet: the span count, the set of
    pids it touched, the root span names (no parent within the trace),
    and whether the spans form one connected tree — the property the
    end-to-end propagation test (and ``repro-anc trace``) asserts.
    """
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    pid_of: Dict[str, int] = {}
    for index, proc in enumerate(processes):
        pid = int(proc.get("pid", index))  # type: ignore[arg-type]
        for span in proc.get("spans", ()):  # type: ignore[union-attr]
            tid = span.get("trace")
            if not isinstance(tid, str):
                continue
            by_trace.setdefault(tid, []).append(span)
            span_id = span.get("span")
            if isinstance(span_id, str):
                pid_of[span_id] = pid
    out: Dict[str, Dict[str, object]] = {}
    for trace_id, spans in sorted(by_trace.items()):
        ids = {s["span"] for s in spans if isinstance(s.get("span"), str)}
        roots = [s for s in spans if s.get("parent") not in ids]
        pids = sorted(
            {pid_of[s["span"]] for s in spans if s.get("span") in pid_of}
        )
        out[trace_id] = {
            "spans": len(spans),
            "pids": pids,
            "roots": sorted(str(s["name"]) for s in roots),
            "connected": len(roots) == 1,
        }
    return out


def phase_breakdown(
    spans: Union[Tracer, Iterable[Span]]
) -> Dict[str, Dict[str, float]]:
    """Aggregate spans into ``{phase: {count, total_s, mean_s, max_s}}``.

    Phases are span names, sorted for stable JSON output.  This is the
    per-phase breakdown the bench harness appends to every saved result.
    """
    if isinstance(spans, Tracer):
        spans = spans.spans()
    acc: Dict[str, Dict[str, float]] = {}
    for span in spans:
        entry = acc.get(span.name)
        if entry is None:
            entry = acc[span.name] = {"count": 0.0, "total_s": 0.0, "max_s": 0.0}
        entry["count"] += 1.0
        entry["total_s"] += span.duration
        if span.duration > entry["max_s"]:
            entry["max_s"] = span.duration
    for entry in acc.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return {name: acc[name] for name in sorted(acc)}
