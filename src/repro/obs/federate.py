"""Labeled metrics federation: one fleet view, no summed gauges.

The shard router used to answer its ``metrics`` op by summing every
number it scattered — which is correct for counters, and nonsense for
gauges: a "queue depth" of 7 that is really shard 0's 6 plus shard 1's
1 tells an operator nothing, and summing two followers' ``replication_lag``
invents a lag nobody has.  This module implements the aggregation rules
that are actually sound per instrument kind:

* **counters** — summed across sources (events are events);
* **gauges** — kept per-source, each tagged with its source labels
  (``shard="0"``, ``role="router"``), *never* summed;
* **histograms** — merged bucket-wise over the shared log-scale bucket
  grid (:data:`repro.obs.instruments.BUCKET_BOUNDS`): bucket counts and
  lifetime count/sum add element-wise, and fleet quantiles are
  re-derived from the merged cumulative distribution.

Inputs are plain registry snapshots (``MetricsRegistry.snapshot()``
dicts, exactly what the ``metrics`` op returns), so the router
federates worker responses straight off the wire.
:func:`render_prometheus_federated` is the text form behind the
router's ``metrics_text`` — a single scrape endpoint for the fleet,
every sample carrying its source labels.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .export import _fmt, _metric_name
from .instruments import BUCKET_BOUNDS

__all__ = [
    "bucket_quantile",
    "federate_snapshots",
    "merge_histograms",
    "render_prometheus_federated",
]

#: A federation input: (source labels, registry snapshot document).
Source = Tuple[Mapping[str, str], Mapping[str, object]]

_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))


def _label_str(labels: Mapping[str, str]) -> str:
    """Labels as the canonical ``k="v",...`` string (sorted, stable)."""
    return ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))


def bucket_quantile(counts: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) from per-bucket counts (upper-bound rule).

    Nearest-rank over the cumulative distribution; the estimate is the
    upper bound of the bucket the rank lands in — conservative, and
    consistent with how Prometheus evaluates ``histogram_quantile``.
    The +Inf overflow slot reports the largest finite bound.
    """
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cum = 0.0
    for i, count in enumerate(counts):
        cum += count
        if cum >= rank:
            return BUCKET_BOUNDS[min(i, len(BUCKET_BOUNDS) - 1)]
    return BUCKET_BOUNDS[-1]


def merge_histograms(
    docs: Sequence[Mapping[str, object]]
) -> Dict[str, object]:
    """Merge per-source histogram snapshot entries bucket-wise.

    Each entry is one source's ``{count, mean, p50, ..., buckets}`` dict
    from ``MetricsRegistry.snapshot()``.  Counts sum; the merged
    quantiles come from the summed bucket distribution, not from
    averaging per-source quantiles (which has no statistical meaning).
    """
    buckets = [0.0] * (len(BUCKET_BOUNDS) + 1)
    count = 0.0
    total = 0.0
    maximum = 0.0
    for doc in docs:
        count += float(doc.get("count", 0.0))  # type: ignore[arg-type]
        total += float(doc.get("count", 0.0)) * float(doc.get("mean", 0.0))  # type: ignore[arg-type]
        maximum = max(maximum, float(doc.get("max", 0.0)))  # type: ignore[arg-type]
        source_buckets = doc.get("buckets")
        if isinstance(source_buckets, (list, tuple)):
            for i, value in enumerate(source_buckets[: len(buckets)]):
                buckets[i] += float(value)
    merged: Dict[str, object] = {
        "count": count,
        "mean": total / count if count else 0.0,
        "max": maximum,
        "buckets": buckets,
    }
    for q, key in _QUANTILES:
        merged[key] = bucket_quantile(buckets, q)
    return merged


def federate_snapshots(sources: Sequence[Source]) -> Dict[str, object]:
    """Aggregate labeled registry snapshots into one fleet document.

    Returns ``{sources, counters, gauges, histograms}`` where counters
    are fleet sums, every gauge maps its canonical label string to that
    source's value (per-source — the whole point), and histograms are
    bucket-merged (:func:`merge_histograms`).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    hist_docs: Dict[str, List[Mapping[str, object]]] = {}
    labels_out: List[Dict[str, str]] = []
    for labels, snapshot in sources:
        labels_out.append(dict(labels))
        key = _label_str(labels)
        for name, value in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in (snapshot.get("gauges") or {}).items():  # type: ignore[union-attr]
            gauges.setdefault(name, {})[key] = float(value)
        for name, doc in (snapshot.get("histograms") or {}).items():  # type: ignore[union-attr]
            hist_docs.setdefault(name, []).append(doc)
    return {
        "sources": labels_out,
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {
            name: merge_histograms(hist_docs[name]) for name in sorted(hist_docs)
        },
    }


def render_prometheus_federated(
    sources: Sequence[Source], *, namespace: str = ""
) -> str:
    """The fleet as one Prometheus text exposition (version 0.0.4).

    Counter and gauge samples keep their source labels — a scraper sees
    ``anc_queue_depth{shard="0"}`` and ``{shard="1"}`` as distinct
    series, exactly as if it had scraped every process itself.
    Histograms merge bucket-wise into real Prometheus ``histogram``
    series with cumulative ``_bucket{le=...}`` samples.
    """
    # Group samples per metric before rendering: the text format
    # requires every sample of a metric to follow its ``# TYPE`` line in
    # one block, so sources are collected first and emitted per metric.
    counter_samples: Dict[str, List[Tuple[str, float]]] = {}
    gauge_samples: Dict[str, List[Tuple[str, float]]] = {}
    hist_docs: Dict[str, List[Mapping[str, object]]] = {}
    for labels, snapshot in sources:
        label_str = _label_str(labels)
        suffix = f"{{{label_str}}}" if label_str else ""
        for name, value in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
            metric = _metric_name(name, namespace) + "_total"
            counter_samples.setdefault(metric, []).append(
                (suffix, float(value))
            )
        for name, value in (snapshot.get("gauges") or {}).items():  # type: ignore[union-attr]
            metric = _metric_name(name, namespace)
            gauge_samples.setdefault(metric, []).append((suffix, float(value)))
        for name, doc in (snapshot.get("histograms") or {}).items():  # type: ignore[union-attr]
            hist_docs.setdefault(name, []).append(doc)
    counter_lines: List[str] = []
    for metric in sorted(counter_samples):
        counter_lines.append(f"# TYPE {metric} counter")
        for suffix, value in counter_samples[metric]:
            counter_lines.append(f"{metric}{suffix} {_fmt(value)}")
    gauge_lines: List[str] = []
    for metric in sorted(gauge_samples):
        gauge_lines.append(f"# TYPE {metric} gauge")
        for suffix, value in gauge_samples[metric]:
            gauge_lines.append(f"{metric}{suffix} {_fmt(value)}")
    hist_lines: List[str] = []
    for name in sorted(hist_docs):
        merged = merge_histograms(hist_docs[name])
        metric = _metric_name(name, namespace)
        hist_lines.append(f"# TYPE {metric} histogram")
        cum = 0.0
        buckets = merged["buckets"]
        assert isinstance(buckets, list)
        for bound, count in zip(BUCKET_BOUNDS, buckets):
            cum += count
            hist_lines.append(f'{metric}_bucket{{le="{bound:g}"}} {_fmt(cum)}')
        cum += buckets[-1]
        hist_lines.append(f'{metric}_bucket{{le="+Inf"}} {_fmt(cum)}')
        mean = float(merged["mean"])  # type: ignore[arg-type]
        count = float(merged["count"])  # type: ignore[arg-type]
        hist_lines.append(f"{metric}_sum {_fmt(mean * count)}")
        hist_lines.append(f"{metric}_count {_fmt(count)}")
    lines = counter_lines + gauge_lines + hist_lines
    return "\n".join(lines) + "\n" if lines else ""
