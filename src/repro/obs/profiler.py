"""A stdlib-only sampling wall-clock profiler with span attribution.

ROADMAP item 1 wants to know *which engine internals* to refactor to
arrays — that needs function-level wall-time attribution, which the
span tracer's phase granularity cannot give.  :class:`SamplingProfiler`
is the standard fixed-cadence sampler built from nothing but the
stdlib: a background daemon thread wakes every ``1/hz`` seconds, walks
``sys._current_frames()``, and aggregates each thread's stack into
collapsed-stack counts (the Brendan Gregg ``a;b;c N`` format every
flamegraph tool eats).

Two properties matter here:

* **Deterministic cadence.**  Samples are taken on a fixed interval
  (``Event.wait`` deadline, no jitter), so two runs of the same
  workload produce comparable sample budgets — shares are stable to
  scheduler noise, not to a PRNG.
* **Phase attribution through the span stack.**  When handed a
  :class:`~repro.obs.trace.Tracer`, the profiler flips the tracer's
  ``track_open`` flag so every live span pushes/pops its name on a
  per-thread stack; each sample then lands in the innermost open engine
  phase (``activation``, ``index_repair``, ...).  The flag is off
  outside a profiling window, keeping the tracing overhead gate
  (<20 %, ``benchmarks/bench_obs_overhead.py``) honest.

The profiler itself samples *other* threads only — its own sampling
loop never shows up in the report.  ``report()`` emits the exact shape
committed to ``bench_results/profile_breakdown.json`` (see
``benchmarks/bench_profile.py``).
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from .trace import Tracer

__all__ = ["SamplingProfiler", "collapse_frame"]

#: Phase bucket for samples taken while no span was open on the thread.
UNATTRIBUTED = "<no-span>"

#: Stacks deeper than this are truncated at the root end — the leaf
#: (where time is actually spent) always survives.
_MAX_FRAMES = 64


def collapse_frame(frame: object, max_frames: int = _MAX_FRAMES) -> Tuple[str, ...]:
    """One thread's stack as root-first ``module:function`` frames."""
    parts: List[str] = []
    cur = frame
    while cur is not None and len(parts) < max_frames:
        code = cur.f_code  # type: ignore[attr-defined]
        module = cur.f_globals.get("__name__", "?")  # type: ignore[attr-defined]
        parts.append(f"{module}:{code.co_name}")
        cur = cur.f_back  # type: ignore[attr-defined]
    parts.reverse()
    return tuple(parts)


class SamplingProfiler:
    """Fixed-cadence stack sampler; see the module docstring.

    Parameters
    ----------
    hz:
        Sampling frequency.  97 by default — a prime, so the cadence
        cannot phase-lock with millisecond-periodic work.
    tracer:
        Optional tracer whose open-span stack attributes samples to
        engine phases.  The profiler owns the tracer's ``track_open``
        flag for the duration of the run.
    """

    def __init__(self, hz: float = 97.0, *, tracer: Optional[Tracer] = None) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be > 0, got {hz}")
        self.hz = hz
        self.interval = 1.0 / hz
        self.tracer = tracer
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._phase_counts: Dict[str, int] = {}
        self.samples = 0
        self.duration_s = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._t0 = 0.0

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        if self.tracer is not None:
            self.tracer.track_open(True)
        self._stop.clear()
        self._t0 = perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="anc-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.duration_s += perf_counter() - self._t0
        if self.tracer is not None:
            self.tracer.track_open(False)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    # -- sampling loop ----------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        tracer = self.tracer
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            with self._lock:
                self.samples += 1
                for tid, frame in frames.items():
                    if tid == own:
                        continue
                    stack = collapse_frame(frame)
                    if not stack:
                        continue
                    self._counts[stack] = self._counts.get(stack, 0) + 1
                    if tracer is not None:
                        open_spans = tracer.open_stack(tid)
                        phase = open_spans[-1] if open_spans else UNATTRIBUTED
                        self._phase_counts[phase] = (
                            self._phase_counts.get(phase, 0) + 1
                        )

    # -- results ----------------------------------------------------------

    def collapsed(self) -> List[str]:
        """Flamegraph-ready collapsed stacks (``frame;frame;frame N``)."""
        with self._lock:
            items = sorted(self._counts.items())
        return [f"{';'.join(stack)} {count}" for stack, count in items]

    def phase_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-engine-phase ``{samples, est_s, share}`` by sampled time.

        ``est_s`` scales each phase's sample count by the sampling
        interval — the standard estimator for wall time under a
        fixed-cadence sampler.
        """
        with self._lock:
            phases = dict(self._phase_counts)
        total = sum(phases.values()) or 1
        return {
            name: {
                "samples": float(count),
                "est_s": count * self.interval,
                "share": count / total,
            }
            for name, count in sorted(
                phases.items(), key=lambda kv: (-kv[1], kv[0])
            )
        }

    def top_functions(self, limit: int = 25) -> List[Dict[str, object]]:
        """Leaf frames ranked by inclusive sample count."""
        leaf: Dict[str, int] = {}
        with self._lock:
            for stack, count in self._counts.items():
                leaf[stack[-1]] = leaf.get(stack[-1], 0) + count
        ranked = sorted(leaf.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
        total = sum(leaf.values()) or 1
        return [
            {"frame": frame, "samples": count, "share": count / total}
            for frame, count in ranked
        ]

    def report(self) -> Dict[str, object]:
        """The JSON document ``bench_results/profile_breakdown.json`` holds."""
        duration = self.duration_s
        if self.running:
            duration += perf_counter() - self._t0
        return {
            "hz": self.hz,
            "duration_s": duration,
            "samples": self.samples,
            "phases": self.phase_breakdown(),
            "top_functions": self.top_functions(),
            "collapsed": self.collapsed(),
        }

    def status(self) -> Dict[str, object]:
        """Compact JSON-able state (the server's ``profile`` op)."""
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": self.samples,
            "stacks": len(self._counts),
        }
