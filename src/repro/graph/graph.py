"""Undirected graph substrate for activation networks.

The paper's relation network is an undirected, unweighted graph
``G(V, E)``.  This module provides :class:`Graph`, the adjacency structure
every other subsystem builds on.  Node identifiers are dense integers
``0..n-1`` so that index structures can use flat arrays; :class:`GraphBuilder`
relabels arbitrary hashable node names onto that dense range.

Edges are stored once in a canonical orientation ``(u, v)`` with ``u < v``
and exposed through :func:`edge_key`.  Per-edge payloads (activeness,
similarity) are kept in separate edge-keyed mappings owned by the modules
that maintain them; :class:`Graph` itself is deliberately payload-free so a
single graph instance can back many concurrent indexes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

__all__ = ["edge_key", "Graph", "GraphBuilder"]

Edge = Tuple[int, int]


def edge_key(u: int, v: int) -> Edge:
    """Return the canonical (sorted) key for the undirected edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


class Graph:
    """An undirected, simple graph over dense integer nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are implicitly ``range(n)``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates and reversed duplicates
        collapse to a single undirected edge; self-loops raise.

    Notes
    -----
    The adjacency is a list of sorted lists, giving deterministic iteration
    order (required for reproducible Dijkstra tie-breaking) and cache-friendly
    scans.  Mutation after construction is limited to :meth:`add_edge`,
    which keeps neighbor lists sorted.
    """

    __slots__ = ("_n", "_adj", "_edges", "_edge_set")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        self._n = n
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._edges: List[Edge] = []
        self._edge_set: Set[Edge] = set()
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert the undirected edge ``{u, v}``.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed (the graph is simple; duplicates are ignored).
        """
        key = edge_key(u, v)
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self._n}")
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._edges.append(key)
        self._insort(self._adj[u], v)
        self._insort(self._adj[v], u)
        return True

    @staticmethod
    def _insort(lst: List[int], x: int) -> None:
        # bisect.insort without the import cost in the hot path; neighbor
        # lists are short for the graphs we target.
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        lst.insert(lo, x)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return len(self._edges)

    def nodes(self) -> range:
        """All node ids as a range."""
        return range(self._n)

    def edges(self) -> Sequence[Edge]:
        """All edges in canonical ``(min, max)`` orientation, insertion order."""
        return self._edges

    def neighbors(self, v: int) -> Sequence[int]:
        """Sorted neighbor list ``N(v)``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """``deg(v) = |N(v)|``."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        if u == v:
            return False
        return edge_key(u, v) in self._edge_set

    def has_node(self, v: int) -> bool:
        """Whether ``v`` is a valid node id."""
        return 0 <= v < self._n

    def common_neighbors(self, u: int, v: int) -> List[int]:
        """Sorted intersection ``N(u) ∩ N(v)`` via a linear merge."""
        a, b = self._adj[u], self._adj[v]
        if len(a) > len(b):
            a, b = b, a
        if len(b) > 8 * len(a):
            # Highly skewed degrees: binary-search the long side.
            out = []
            for x in a:
                lo, hi = 0, len(b)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if b[mid] < x:
                        lo = mid + 1
                    else:
                        hi = mid
                if lo < len(b) and b[lo] == x:
                    out.append(x)
            return out
        out = []
        i = j = 0
        la, lb = len(a), len(b)
        while i < la and j < lb:
            x, y = a[i], b[j]
            if x == y:
                out.append(x)
                i += 1
                j += 1
            elif x < y:
                i += 1
            else:
                j += 1
        return out

    def exclusive_neighbors(self, u: int, v: int) -> List[int]:
        """``N(u) \\ (N(v) ∪ {v})`` — u's neighbors exclusive of v's."""
        other = set(self._adj[v])
        other.add(v)
        return [w for w in self._adj[u] if w not in other]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self) -> int:  # Graphs are mutable; identity hash.
        return id(self)

    def copy(self) -> "Graph":
        """Deep copy (fresh adjacency and edge containers)."""
        g = Graph(self._n)
        g._edges = list(self._edges)
        g._edge_set = set(self._edge_set)
        g._adj = [list(nbrs) for nbrs in self._adj]
        return g

    def subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns ``(subgraph, mapping)`` where ``mapping`` maps original node
        ids to the subgraph's dense ids.
        """
        keep = sorted(set(nodes))
        mapping = {orig: new for new, orig in enumerate(keep)}
        sg = Graph(len(keep))
        for orig in keep:
            for nbr in self._adj[orig]:
                if nbr > orig and nbr in mapping:
                    sg.add_edge(mapping[orig], mapping[nbr])
        return sg, mapping


class GraphBuilder:
    """Incrementally assemble a :class:`Graph` from arbitrary node names.

    Node names may be any hashable value; they are assigned dense integer
    ids in first-seen order.  Useful when reading edge lists whose node
    labels are strings or sparse integers.
    """

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._names: List[Hashable] = []
        self._edges: List[Edge] = []

    def node_id(self, name: Hashable) -> int:
        """Id for ``name``, assigning the next dense id on first sight."""
        nid = self._ids.get(name)
        if nid is None:
            nid = len(self._names)
            self._ids[name] = nid
            self._names.append(name)
        return nid

    def add_edge(self, a: Hashable, b: Hashable) -> None:
        """Record the undirected edge between names ``a`` and ``b``."""
        u, v = self.node_id(a), self.node_id(b)
        if u == v:
            raise ValueError(f"self-loop on node {a!r}")
        self._edges.append(edge_key(u, v))

    @property
    def names(self) -> List[Hashable]:
        """Node names indexed by dense id."""
        return self._names

    def build(self) -> Tuple[Graph, List[Hashable]]:
        """Materialize the graph.  Returns ``(graph, names)``."""
        return Graph(len(self._names), self._edges), list(self._names)
