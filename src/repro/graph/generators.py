"""Synthetic graph generators.

The paper evaluates on 17 real-world graphs (Table I) that we cannot ship.
These generators produce deterministic stand-ins with the properties the
experiments exercise:

* **planted partition** graphs carry ground-truth communities with a
  controllable size skew, matching the paper's observation [20] that real
  networks consist of many small clusters;
* **Barabási–Albert** style preferential attachment gives the heavy-tailed
  degree distributions of the social graphs (FB, MI, OK, TW…);
* **Erdős–Rényi** graphs serve as unstructured controls in tests.

Every generator takes an explicit ``random.Random`` (or seed) and is fully
deterministic for a given seed.  All generators return connected graphs:
stragglers are attached to the giant component with a single random edge,
which perturbs community structure negligibly.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple, Union

from .graph import Graph
from .traversal import connected_components

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_community_sizes",
    "planted_partition",
    "lfr_like",
    "caveman_relaxed",
    "grid_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "barbell_graph",
]

RngLike = Union[int, random.Random, None]


def _rng(seed: RngLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _connect_components(graph: Graph, rng: random.Random) -> None:
    """Attach every non-giant component to the giant with one random edge."""
    comps = connected_components(graph)
    if len(comps) <= 1:
        return
    comps.sort(key=len, reverse=True)
    giant = comps[0]
    for comp in comps[1:]:
        u = rng.choice(comp)
        v = rng.choice(giant)
        while v == u:
            v = rng.choice(giant)
        graph.add_edge(u, v)


def erdos_renyi(n: int, p: float, seed: RngLike = None, *, connect: bool = True) -> Graph:
    """G(n, p) random graph.

    Uses the skip-sampling construction (geometric jumps over the edge
    stream) so the cost is proportional to the number of edges, not
    ``n^2``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    graph = Graph(n)
    if p > 0.0 and n > 1:
        log_q = math.log(1.0 - p) if p < 1.0 else None
        v, w = 1, -1
        while v < n:
            if log_q is None:
                w += 1
            else:
                r = rng.random()
                w += 1 + int(math.log(1.0 - r) / log_q)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                graph.add_edge(v, w)
    if connect:
        _connect_components(graph, rng)
    return graph


def barabasi_albert(n: int, m_attach: int, seed: RngLike = None) -> Graph:
    """Preferential-attachment graph: each new node attaches ``m_attach`` edges.

    Produces the heavy-tailed degree distribution characteristic of the
    paper's social-network datasets.
    """
    if m_attach < 1:
        raise ValueError(f"m_attach must be >= 1, got {m_attach}")
    if n <= m_attach:
        raise ValueError(f"need n > m_attach, got n={n}, m_attach={m_attach}")
    rng = _rng(seed)
    graph = Graph(n)
    # Seed clique of m_attach + 1 nodes.
    repeated: List[int] = []
    for u in range(m_attach + 1):
        for v in range(u + 1, m_attach + 1):
            graph.add_edge(u, v)
            repeated.append(u)
            repeated.append(v)
    for new in range(m_attach + 1, n):
        targets: set = set()
        while len(targets) < m_attach:
            targets.add(rng.choice(repeated))
        for t in targets:
            graph.add_edge(new, t)
            repeated.append(new)
            repeated.append(t)
    return graph


def powerlaw_community_sizes(
    n: int,
    n_communities: int,
    rng: random.Random,
    *,
    exponent: float = 2.0,
    min_size: int = 3,
) -> List[int]:
    """Draw ``n_communities`` sizes summing to ``n`` with a power-law skew.

    Sizes are sampled proportional to ``rank^{-1/(exponent-1)}`` and then
    rounded so the total is exactly ``n`` and each size >= ``min_size``
    (when feasible).
    """
    if n_communities < 1:
        raise ValueError("need at least one community")
    if n < n_communities * min_size:
        min_size = max(1, n // n_communities)
    raw = [(i + 1) ** (-1.0 / max(exponent - 1.0, 0.25)) for i in range(n_communities)]
    # Jitter so repeated calls differ across seeds but stay deterministic.
    raw = [r * (0.8 + 0.4 * rng.random()) for r in raw]
    total = sum(raw)
    sizes = [max(min_size, int(round(r / total * n))) for r in raw]
    # Repair the rounding drift.
    drift = n - sum(sizes)
    i = 0
    while drift != 0:
        idx = i % n_communities
        if drift > 0:
            sizes[idx] += 1
            drift -= 1
        elif sizes[idx] > min_size:
            sizes[idx] -= 1
            drift += 1
        i += 1
        if i > 10 * n_communities + abs(drift) + 10:  # pragma: no cover
            raise RuntimeError("size repair failed to converge")
    return sizes


def planted_partition(
    n: int,
    n_communities: int,
    *,
    p_in: float = 0.3,
    p_out: float = 0.005,
    seed: RngLike = None,
    size_exponent: float = 2.0,
    min_size: int = 3,
    connect: bool = True,
) -> Tuple[Graph, List[int]]:
    """Planted-partition graph with power-law community sizes.

    Returns ``(graph, labels)`` where ``labels[v]`` is the ground-truth
    community of node ``v``.  Intra-community pairs are joined with
    probability ``p_in``, inter-community pairs with ``p_out``.

    The expected degree is kept bounded by sampling inter-community edges
    with the skip trick over the full pair stream rather than per-pair
    coin flips.
    """
    rng = _rng(seed)
    sizes = powerlaw_community_sizes(n, n_communities, rng, exponent=size_exponent, min_size=min_size)
    labels = []
    for cid, size in enumerate(sizes):
        labels.extend([cid] * size)
    rng.shuffle(labels)
    graph = Graph(n)
    members: List[List[int]] = [[] for _ in range(n_communities)]
    for v, c in enumerate(labels):
        members[c].append(v)
    # Intra-community edges: dense ER within each block.
    for block in members:
        k = len(block)
        if k < 2 or p_in <= 0.0:
            continue
        log_q = math.log(1.0 - p_in) if p_in < 1.0 else None
        v, w = 1, -1
        while v < k:
            if log_q is None:
                w += 1
            else:
                w += 1 + int(math.log(1.0 - rng.random()) / log_q)
            while w >= v and v < k:
                w -= v
                v += 1
            if v < k:
                graph.add_edge(block[v], block[w])
    # Inter-community edges: sparse ER over all pairs, rejecting intra pairs.
    if p_out > 0.0 and n > 1:
        log_q = math.log(1.0 - p_out) if p_out < 1.0 else None
        v, w = 1, -1
        while v < n:
            if log_q is None:
                w += 1
            else:
                w += 1 + int(math.log(1.0 - rng.random()) / log_q)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n and labels[v] != labels[w]:
                graph.add_edge(v, w)
    if connect:
        _connect_components(graph, rng)
    return graph, labels


def lfr_like(
    n: int,
    *,
    mixing: float = 0.1,
    avg_degree: float = 8.0,
    max_degree_factor: float = 6.0,
    degree_exponent: float = 2.5,
    n_communities: Optional[int] = None,
    size_exponent: float = 2.0,
    seed: RngLike = None,
) -> Tuple[Graph, List[int]]:
    """LFR-style community benchmark graph.

    A practical variant of the Lancichinetti–Fortunato–Radicchi
    benchmark: power-law degree sequence (exponent ``degree_exponent``,
    truncated at ``max_degree_factor · avg_degree``), power-law community
    sizes, and a *mixing parameter* — each node spends ≈ ``mixing`` of
    its degree on inter-community edges.  Harder than a planted
    partition: hubs straddle communities and degree heterogeneity blurs
    the block structure, which is the regime where reinforcement-style
    propagation distinguishes itself from plain structural similarity.

    Returns ``(graph, labels)``.  The realized mixing fraction tracks the
    parameter closely but not exactly (stub matching with rejection).
    """
    if not 0.0 <= mixing <= 1.0:
        raise ValueError(f"mixing must be in [0, 1], got {mixing}")
    if avg_degree < 2:
        raise ValueError(f"avg_degree must be >= 2, got {avg_degree}")
    rng = _rng(seed)
    if n_communities is None:
        n_communities = max(2, n // 25)
    sizes = powerlaw_community_sizes(
        n, n_communities, rng, exponent=size_exponent, min_size=5
    )
    labels: List[int] = []
    for cid, size in enumerate(sizes):
        labels.extend([cid] * size)
    rng.shuffle(labels)
    members: List[List[int]] = [[] for _ in range(n_communities)]
    for v, c in enumerate(labels):
        members[c].append(v)

    # Truncated power-law degree sequence via inverse transform.
    d_min = 2.0
    d_max = max(d_min + 1.0, max_degree_factor * avg_degree)
    alpha = degree_exponent
    degrees = []
    for _ in range(n):
        u = rng.random()
        # Inverse CDF of p(d) ~ d^-alpha on [d_min, d_max].
        a = d_min ** (1 - alpha)
        b = d_max ** (1 - alpha)
        d = (a + u * (b - a)) ** (1 / (1 - alpha))
        degrees.append(d)
    # Rescale to the requested average.
    scale = avg_degree / (sum(degrees) / n)
    degrees = [max(2, int(round(d * scale))) for d in degrees]

    graph = Graph(n)

    def wire(stubs: List[int]) -> None:
        """Random stub matching with duplicate/self rejection."""
        rng.shuffle(stubs)
        attempts = 0
        while len(stubs) > 1 and attempts < 10 * len(stubs) + 100:
            u = stubs.pop()
            v = stubs.pop()
            if u == v or graph.has_edge(u, v):
                stubs.append(u)
                stubs.append(v)
                rng.shuffle(stubs)
                attempts += 1
                continue
            graph.add_edge(u, v)
        # Leftover odd/unmatchable stubs are dropped (standard LFR slack).

    # Intra-community wiring per community.
    for block in members:
        stubs: List[int] = []
        for v in block:
            intra = int(round(degrees[v] * (1.0 - mixing)))
            stubs.extend([v] * max(1, intra))
        wire(stubs)
    # Inter-community wiring across the whole graph, rejecting intra pairs.
    stubs = []
    for v in range(n):
        inter = int(round(degrees[v] * mixing))
        stubs.extend([v] * inter)
    rng.shuffle(stubs)
    attempts = 0
    while len(stubs) > 1 and attempts < 10 * len(stubs) + 100:
        u = stubs.pop()
        v = stubs.pop()
        if u == v or labels[u] == labels[v] or graph.has_edge(u, v):
            stubs.append(u)
            stubs.append(v)
            rng.shuffle(stubs)
            attempts += 1
            continue
        graph.add_edge(u, v)
    _connect_components(graph, rng)
    return graph, labels


def caveman_relaxed(
    n_cliques: int,
    clique_size: int,
    rewire_p: float = 0.1,
    seed: RngLike = None,
) -> Tuple[Graph, List[int]]:
    """Relaxed caveman graph: cliques with a fraction of edges rewired out.

    A classic benchmark with unambiguous ground truth; used by tests that
    need a clustering any sane algorithm must recover.
    """
    rng = _rng(seed)
    n = n_cliques * clique_size
    graph = Graph(n)
    labels = [v // clique_size for v in range(n)]
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                u, v = base + i, base + j
                if rng.random() < rewire_p:
                    # Rewire one endpoint to a uniform random node outside.
                    w = rng.randrange(n)
                    while w == u or labels[w] == labels[u]:
                        w = rng.randrange(n)
                    graph.add_edge(u, w)
                else:
                    graph.add_edge(u, v)
    _connect_components(graph, rng)
    return graph, labels


def grid_graph(rows: int, cols: int) -> Graph:
    """2D grid, used by index tests for predictable shortest paths."""
    n = rows * cols
    graph = Graph(n)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def path_graph(n: int) -> Graph:
    """Path 0-1-2-…-(n-1)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on n nodes."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def star_graph(n_leaves: int) -> Graph:
    """Star: node 0 is the hub."""
    return Graph(n_leaves + 1, [(0, i) for i in range(1, n_leaves + 1)])


def complete_graph(n: int) -> Graph:
    """Clique on n nodes."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def barbell_graph(clique: int, bridge: int = 1) -> Graph:
    """Two cliques joined by a path of ``bridge`` edges.

    The canonical two-cluster graph: every clustering method under test
    should separate the two bells at some granularity.
    """
    n = 2 * clique + max(0, bridge - 1)
    graph = Graph(n)
    for i in range(clique):
        for j in range(i + 1, clique):
            graph.add_edge(i, j)
            graph.add_edge(clique + max(0, bridge - 1) + i, clique + max(0, bridge - 1) + j)
    # Bridge path from node clique-1 to node clique+bridge-1 region.
    left = clique - 1
    chain = list(range(clique, clique + max(0, bridge - 1)))
    right = clique + max(0, bridge - 1)
    prev = left
    for node in chain:
        graph.add_edge(prev, node)
        prev = node
    graph.add_edge(prev, right)
    return graph
