"""Edge-list I/O.

Supports the two file shapes the paper's datasets come in:

* plain edge lists — ``u v`` per line (relation network only);
* temporal edge lists — ``u v t`` per line (CollegeMsg-style), which split
  into a relation network plus an activation stream.

Node labels may be arbitrary strings; they are densified in first-seen
order and the mapping is returned so results can be reported in the
original labels.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Hashable, List, TextIO, Tuple, Union

from ..core.activation import Activation
from .graph import Graph, GraphBuilder

__all__ = [
    "read_edge_list",
    "read_temporal_edge_list",
    "write_edge_list",
    "write_temporal_edge_list",
]

PathLike = Union[str, Path]


def _open_lines(source: Union[PathLike, io.TextIOBase]) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8")
    return source


def read_edge_list(source: Union[PathLike, io.TextIOBase]) -> Tuple[Graph, List[Hashable]]:
    """Read ``u v`` lines into a graph.

    Lines starting with ``#`` or ``%`` and blank lines are skipped.
    Returns ``(graph, names)`` with ``names[i]`` the original label of
    dense node ``i``.
    """
    builder = GraphBuilder()
    fh = _open_lines(source)
    try:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: expected 'u v', got {line!r}")
            if parts[0] == parts[1]:
                continue  # drop self-loops silently, as SNAP loaders do
            builder.add_edge(parts[0], parts[1])
    finally:
        if isinstance(source, (str, Path)):
            fh.close()
    return builder.build()


def read_temporal_edge_list(
    source: Union[PathLike, io.TextIOBase],
) -> Tuple[Graph, List[Activation], List[Hashable]]:
    """Read ``u v t`` lines into a relation graph plus activation stream.

    Every distinct ``{u, v}`` pair becomes one relation edge; every line
    becomes one activation of that edge at its timestamp.  Activations are
    returned sorted by timestamp (stable on input order), as required by
    the stream model of Section III.
    """
    builder = GraphBuilder()
    raw: List[Tuple[int, int, float]] = []
    fh = _open_lines(source)
    try:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: expected 'u v t', got {line!r}")
            if parts[0] == parts[1]:
                continue
            u = builder.node_id(parts[0])
            v = builder.node_id(parts[1])
            t = float(parts[2])
            if t < 0:
                raise ValueError(f"line {lineno}: negative timestamp {t}")
            raw.append((u, v, t))
            builder.add_edge(parts[0], parts[1])
    finally:
        if isinstance(source, (str, Path)):
            fh.close()
    graph, names = builder.build()
    raw.sort(key=lambda r: r[2])
    stream = [Activation(min(u, v), max(u, v), t) for u, v, t in raw]
    return graph, stream, names


def write_edge_list(graph: Graph, target: Union[PathLike, io.TextIOBase]) -> None:
    """Write the graph as canonical ``u v`` lines (dense integer ids)."""
    fh = target if isinstance(target, io.TextIOBase) else open(target, "w", encoding="utf-8")
    try:
        fh.write(f"# n={graph.n} m={graph.m}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
    finally:
        if isinstance(target, (str, Path)):
            fh.close()


def write_temporal_edge_list(
    graph: Graph,
    stream: List[Activation],
    target: Union[PathLike, io.TextIOBase],
) -> None:
    """Write relation edges with no activations plus one line per activation."""
    fh = target if isinstance(target, io.TextIOBase) else open(target, "w", encoding="utf-8")
    try:
        fh.write(f"# n={graph.n} m={graph.m} activations={len(stream)}\n")
        activated = {(a.u, a.v) for a in stream}
        for u, v in graph.edges():
            if (u, v) not in activated:
                fh.write(f"{u} {v} 0\n")
        for act in stream:
            fh.write(f"{act.u} {act.v} {act.t}\n")
    finally:
        if isinstance(target, (str, Path)):
            fh.close()
