"""Graph substrate: adjacency structure, traversal, generators, I/O."""

from .graph import Edge, Graph, GraphBuilder, edge_key
from .traversal import (
    INF,
    bfs_order,
    connected_components,
    dijkstra,
    edge_weight_map,
    multi_source_dijkstra,
    shortest_path,
)

__all__ = [
    "Edge",
    "Graph",
    "GraphBuilder",
    "edge_key",
    "INF",
    "bfs_order",
    "connected_components",
    "dijkstra",
    "edge_weight_map",
    "multi_source_dijkstra",
    "shortest_path",
]
