"""Graph traversal primitives: BFS, connected components, Dijkstra.

These are the reference algorithms the index structures are validated
against.  ``multi_source_dijkstra`` is the ground truth for a Voronoi
partition (Section V-A of the paper): one Dijkstra run from a super-source
attached to every seed yields, for each node, its closest seed, the
distance to it, and the shortest-path-tree parent.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import Edge, Graph, edge_key

__all__ = [
    "INF",
    "bfs_order",
    "connected_components",
    "dijkstra",
    "multi_source_dijkstra",
    "edge_weight_map",
    "shortest_path",
    "eccentricity_upper_bound",
]

INF = float("inf")

WeightFn = Callable[[int, int], float]


def bfs_order(graph: Graph, source: int) -> List[int]:
    """Nodes reachable from ``source`` in BFS order."""
    seen = [False] * graph.n
    seen[source] = True
    order = [source]
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        for v in graph.neighbors(u):
            if not seen[v]:
                seen[v] = True
                order.append(v)
    return order


def connected_components(graph: Graph, nodes: Optional[Iterable[int]] = None) -> List[List[int]]:
    """Connected components, each a sorted node list, ordered by min node.

    If ``nodes`` is given, components are computed in the subgraph induced
    by that node set (edges with both endpoints inside it).
    """
    if nodes is None:
        allowed = None
        candidates: Iterable[int] = graph.nodes()
    else:
        allowed = set(nodes)
        candidates = sorted(allowed)
    seen: set = set()
    components: List[List[int]] = []
    for start in candidates:
        if start in seen:
            continue
        seen.add(start)
        comp = [start]
        head = 0
        while head < len(comp):
            u = comp[head]
            head += 1
            for v in graph.neighbors(u):
                if v in seen:
                    continue
                if allowed is not None and v not in allowed:
                    continue
                seen.add(v)
                comp.append(v)
        comp.sort()
        components.append(comp)
    components.sort(key=lambda c: c[0])
    return components


def dijkstra(
    graph: Graph,
    source: int,
    weight: WeightFn,
) -> Tuple[List[float], List[int]]:
    """Single-source Dijkstra.

    Parameters
    ----------
    weight:
        ``weight(u, v)`` must return the non-negative length of edge
        ``{u, v}``; it is called with ``u < v`` not guaranteed, so symmetric
        weight functions are required (use :func:`edge_weight_map` to wrap a
        canonical-key dict).

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the shortest distance from ``source`` (``inf`` if
        unreachable); ``parent[v]`` the predecessor on a shortest path
        (``-1`` for the source and unreachable nodes).
    """
    n = graph.n
    dist = [INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    pq: List[Tuple[float, int]] = [(0.0, source)]
    while pq:
        d, u = heapq.heappop(pq)
        if d > dist[u]:
            continue
        for v in graph.neighbors(u):
            nd = d + weight(u, v)
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(pq, (nd, v))
    return dist, parent


def multi_source_dijkstra(
    graph: Graph,
    sources: Sequence[int],
    weight: WeightFn,
) -> Tuple[List[float], List[int], List[int]]:
    """Dijkstra from a super-source attached to every node in ``sources``.

    This is the Voronoi-partition primitive of the paper (Section V-A):
    grouping nodes by ``seed[v]`` yields the partition, and ``parent``
    encodes the shortest-path forest rooted at the seeds.

    Tie-breaking is deterministic: when two seeds are equidistant from a
    node, the seed with the smaller id (and, transitively, the smaller
    parent id) wins because the priority queue orders by
    ``(distance, seed, node)``.

    Returns
    -------
    (dist, seed, parent):
        ``seed[v]`` is the closest source (``-1`` if unreachable),
        ``parent[v]`` the predecessor toward that seed (``-1`` for the
        seeds themselves and unreachable nodes).
    """
    n = graph.n
    dist = [INF] * n
    seed = [-1] * n
    parent = [-1] * n
    pq: List[Tuple[float, int, int]] = []
    for s in sources:
        dist[s] = 0.0
        seed[s] = s
        heapq.heappush(pq, (0.0, s, s))
    while pq:
        d, sd, u = heapq.heappop(pq)
        if d > dist[u] or (d == dist[u] and sd > seed[u]):
            continue
        for v in graph.neighbors(u):
            nd = d + weight(u, v)
            if nd < dist[v] or (nd == dist[v] and sd < seed[v]):
                dist[v] = nd
                seed[v] = sd
                parent[v] = u
                heapq.heappush(pq, (nd, sd, v))
    return dist, seed, parent


def edge_weight_map(weights: Dict[Edge, float]) -> WeightFn:
    """Wrap a canonical-edge-key dict as a symmetric weight function."""

    def weight(u: int, v: int) -> float:
        return weights[edge_key(u, v)]

    return weight


def shortest_path(
    graph: Graph,
    source: int,
    target: int,
    weight: WeightFn,
) -> Tuple[float, List[int]]:
    """Shortest distance and one shortest path from source to target.

    Returns ``(inf, [])`` if ``target`` is unreachable.
    """
    dist, parent = dijkstra(graph, source, weight)
    if dist[target] == INF:
        return INF, []
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[target], path


def eccentricity_upper_bound(graph: Graph, source: int) -> int:
    """Hop eccentricity of ``source`` in its component (BFS depth)."""
    depth = [-1] * graph.n
    depth[source] = 0
    frontier = [source]
    max_depth = 0
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if depth[v] < 0:
                    depth[v] = depth[u] + 1
                    max_depth = depth[v]
                    nxt.append(v)
        frontier = nxt
    return max_depth
