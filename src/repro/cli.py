"""Command-line interface: cluster graphs and replay activation streams.

Installed as the ``repro-anc`` console script (also runnable as
``python -m repro.cli``).  Subcommands:

* ``info <edgelist>`` — graph statistics (nodes, edges, degrees,
  components);
* ``cluster <edgelist>`` — cluster a static graph with ANC or a baseline
  and print the clusters (optionally at a chosen granularity level);
* ``stream <temporal-edgelist>`` — replay a ``u v t`` activation stream
  through an online engine, printing cluster snapshots at checkpoints
  and answering local queries; ``--trace-out`` / ``--metrics-out``
  capture a Chrome trace and a metrics snapshot of the replay
  (``docs/observability.md``);
* ``stats`` — fetch a running server's metrics in Prometheus text (or
  JSON) over the service protocol; ``--fleet`` scrapes a router's
  federated, per-shard-labeled exposition (``docs/observability.md``);
* ``trace`` — assemble a merged multi-process Chrome trace from a live
  deployment's span buffers (``--follow`` keeps collecting; ``--probe``
  sends traced read-only requests first so an idle fleet still yields
  a connected client → router → worker trace);
* ``datasets`` — the Table I stand-in catalogue;
* ``lint`` — run the :mod:`repro.analysis` invariant linter over the
  source tree (the CI gate; see ``docs/static-analysis.md``);
* ``chaos`` — run the fault-injection matrix (:mod:`repro.faults`)
  against the serving stack and gate on silent divergence
  (``docs/faults.md``);
* ``promote`` — fail over: fence the old primary and promote a follower
  to primary under a fresh epoch (``docs/replication.md``);
* ``replicas`` — one node's view of the replication topology (role,
  epoch, committed entries, per-follower lag);
* ``read-serve`` — run the read-path router: writes pass through to the
  primary, session-tokened reads fan across the follower fleet under
  bounded staleness (``docs/replication.md``);
* ``shard-serve`` — run N partitioned engine workers behind a
  scatter-gather router speaking the single-server protocol
  (``docs/sharding.md``);
* ``shardmap`` — show how a relation graph partitions across shards
  (offline from an edge list, or live from a running router).

Edge lists are whitespace-separated ``u v`` (or ``u v t``) lines; node
labels may be arbitrary strings and are reported back verbatim.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional, Sequence, Tuple

from .baselines import attractor, louvain, scan
from .core.anc import ANCF, ANCParams, make_engine
from .graph.io import read_edge_list, read_temporal_edge_list
from .graph.traversal import connected_components

__all__ = [
    "cmd_info",
    "cmd_cluster",
    "cmd_stream",
    "cmd_serve",
    "cmd_chaos",
    "cmd_stats",
    "cmd_trace",
    "cmd_datasets",
    "cmd_lint",
    "cmd_promote",
    "cmd_read_serve",
    "cmd_replicas",
    "cmd_shard_serve",
    "cmd_shardmap",
    "build_parser",
    "main",
]


def _add_anc_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--lam", type=float, default=0.1, help="decay factor λ")
    parser.add_argument("--eps", type=float, default=0.25, help="active-neighbor threshold ε")
    parser.add_argument("--mu", type=int, default=2, help="core threshold μ")
    parser.add_argument("--rep", type=int, default=3, help="reinforcement repetitions")
    parser.add_argument("--pyramids", type=int, default=4, help="number of pyramids k")
    parser.add_argument("--support", type=float, default=0.7, help="voting threshold θ")
    parser.add_argument("--seed", type=int, default=0, help="index RNG seed")
    parser.add_argument(
        "--update-workers", type=int, default=0,
        help="threads for parallel index maintenance inside this process "
             "(Lemma 13); 0 = sequential. Thread-level parallelism is "
             "GIL-bound (docs/usage.md); for process-level scale-out run "
             "'repro-anc shard-serve --shards N' instead (docs/sharding.md)",
    )


def _params_from(args: argparse.Namespace) -> ANCParams:
    return ANCParams(
        lam=args.lam,
        eps=args.eps,
        mu=args.mu,
        rep=args.rep,
        k=args.pyramids,
        support=args.support,
        seed=args.seed,
        update_workers=args.update_workers,
    )


def _print_clusters(clusters: Sequence[List[int]], names: Sequence[object], *,
                    min_size: int, out: IO[str]) -> None:
    kept = [c for c in clusters if len(c) >= min_size]
    kept.sort(key=len, reverse=True)
    print(f"{len(kept)} clusters (>= {min_size} nodes):", file=out)
    for i, cluster in enumerate(kept):
        labels = [str(names[v]) for v in cluster]
        preview = " ".join(labels[:12]) + (" ..." if len(labels) > 12 else "")
        print(f"  [{i}] size={len(cluster)}: {preview}", file=out)


def cmd_info(args: argparse.Namespace, out: IO[str]) -> int:
    graph, names = read_edge_list(args.edgelist)
    comps = connected_components(graph)
    degrees = sorted((graph.degree(v) for v in graph.nodes()), reverse=True)
    print(f"nodes:      {graph.n}", file=out)
    print(f"edges:      {graph.m}", file=out)
    print(f"components: {len(comps)} (largest {len(comps[0]) if comps else 0})", file=out)
    if degrees:
        print(f"degree:     max={degrees[0]} "
              f"median={degrees[len(degrees) // 2]} "
              f"mean={2 * graph.m / graph.n:.2f}", file=out)
    return 0


def cmd_cluster(args: argparse.Namespace, out: IO[str]) -> int:
    graph, names = read_edge_list(args.edgelist)
    if args.method == "anc":
        engine = ANCF(graph, _params_from(args))
        level = args.level if args.level is not None else engine.queries.sqrt_n_level()
        clusters = engine.clusters(level)
        print(f"ANC clustering at level {level} "
              f"(of 1..{engine.queries.num_levels})", file=out)
    elif args.method == "louvain":
        clusters = louvain(graph, seed=args.seed)
    elif args.method == "scan":
        clusters = scan(graph, eps=args.eps, mu=max(2, args.mu)).clusters
    elif args.method == "attractor":
        clusters = attractor(graph)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.method)
    _print_clusters(clusters, names, min_size=args.min_size, out=out)
    return 0


def cmd_stream(args: argparse.Namespace, out: IO[str]) -> int:
    graph, stream, names = read_temporal_edge_list(args.edgelist)
    if not stream:
        print("no activations in input", file=out)
        return 1
    engine = make_engine(args.engine, graph, _params_from(args))
    obs = None
    if args.trace_out or args.metrics_out:
        from .obs.instruments import MetricsRegistry
        from .obs.trace import Observability, Tracer

        tracer = Tracer(
            enabled=True, capacity=65536, sample=args.trace_sample
        )
        obs = Observability(registry=MetricsRegistry(), tracer=tracer)
        engine.attach_obs(obs)
    watcher = None
    if args.watch:
        from .monitor import ClusterWatcher

        level = args.level or None
        watcher = ClusterWatcher(
            engine, levels=None if level is None else [level]
        )
        for label in args.watch:
            if label not in names:
                print(f"unknown watch node {label!r}", file=out)
                return 1
            watcher.watch(names.index(label))
    first, last = stream[0].t, stream[-1].t
    checkpoints = args.at or [last]
    checkpoints = sorted(set(checkpoints))
    print(f"replaying {len(stream)} activations over t=[{first}, {last}] "
          f"with {args.engine.upper()}", file=out)
    ck = 0
    batch: List[object] = []
    from .core.activation import ActivationStream

    validated = ActivationStream(graph, stream)
    for t, batch in validated.batches_by_timestamp():
        if watcher is not None:
            for change in watcher.process_batch(batch):
                joined = " ".join(str(names[x]) for x in sorted(change.joined))
                left = " ".join(str(names[x]) for x in sorted(change.left))
                print(
                    f"[t={t:g}] {names[change.node]} cluster changed: "
                    f"+[{joined}] -[{left}]",
                    file=out,
                )
        else:
            engine.process_batch(batch)
        while ck < len(checkpoints) and checkpoints[ck] <= t:
            print(f"\n--- snapshot at t={t} ---", file=out)
            if args.query is not None:
                v = names.index(args.query) if args.query in names else None
                if v is None:
                    print(f"unknown node {args.query!r}", file=out)
                else:
                    cluster = engine.cluster_of(v, args.level)
                    labels = [str(names[x]) for x in cluster]
                    print(f"cluster of {args.query}: {' '.join(labels)}", file=out)
            else:
                _print_clusters(
                    engine.clusters(args.level), names,
                    min_size=args.min_size, out=out,
                )
            ck += 1
    if obs is not None:
        if args.trace_out:
            from .obs.export import write_chrome_trace

            write_chrome_trace(args.trace_out, obs.tracer)
            print(
                f"wrote Chrome trace ({len(obs.tracer)} spans, "
                f"{obs.tracer.recorded} recorded) to {args.trace_out}",
                file=out,
            )
        if args.metrics_out:
            import json

            from .obs.export import render_json

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(
                    render_json(obs.registry), fh, indent=2, sort_keys=True
                )
                fh.write("\n")
            print(f"wrote metrics snapshot to {args.metrics_out}", file=out)
    return 0


def cmd_stats(args: argparse.Namespace, out: IO[str]) -> int:
    from .service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
            if args.format == "json":
                import json

                doc = {"stats": client.stats(), "metrics": client.metrics()}
                print(json.dumps(doc, indent=2, sort_keys=True), file=out)
            elif args.fleet:
                # The pure federated scrape (against a router: every
                # source labeled shard="N"/role, gauges never summed) —
                # no client-side samples appended, so the output is
                # exactly what a Prometheus scraper would ingest.
                text = str(
                    client.request("metrics_text", namespace=args.namespace)[
                        "text"
                    ]
                )
                print(text, end="", file=out)
            else:
                print(
                    client.metrics_text(namespace=args.namespace),
                    end="",
                    file=out,
                )
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    return 0


def cmd_trace(args: argparse.Namespace, out: IO[str]) -> int:
    """Assemble a fleet Chrome trace from a live deployment."""
    import json
    import os
    import time

    from .obs.export import fleet_chrome_trace, fleet_trace_summary
    from .service.client import ServiceClient, ServiceError

    merged: dict = {}

    def absorb(processes: "List[dict]") -> None:
        for proc in processes:
            if not isinstance(proc, dict):
                continue
            pid = proc.get("pid")
            entry = merged.setdefault(
                pid, {"pid": pid, "process": proc.get("process"), "spans": []}
            )
            spans = proc.get("spans")
            if isinstance(spans, list):
                entry["spans"].extend(spans)

    try:
        with ServiceClient(
            args.host,
            args.port,
            timeout=args.timeout,
            trace_sample=1.0 if args.probe else 0.0,
        ) as client:
            for _ in range(args.probe):
                client.clusters()  # read-only traced round trip
            deadline = time.monotonic() + (args.duration if args.follow else 0.0)
            while True:
                response = client.trace_fetch(drain=args.follow)
                processes = response.get("processes")
                if isinstance(processes, list):
                    absorb(processes)
                else:  # a single unsharded server
                    absorb([response])
                if not args.follow or time.monotonic() >= deadline:
                    break
                time.sleep(args.interval)
            absorb(
                [
                    {
                        "pid": os.getpid(),
                        "process": "client",
                        "spans": client.trace_spans(),
                    }
                ]
            )
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    processes = sorted(
        merged.values(), key=lambda p: (str(p.get("process")), str(p.get("pid")))
    )
    summary = fleet_trace_summary(processes)
    doc = fleet_chrome_trace(processes, trace_id=args.trace_id)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        print(
            f"wrote fleet trace ({len(doc['traceEvents'])} events, "
            f"{len(processes)} processes) to {args.out}",
            file=out,
        )
    for trace_id in sorted(summary):
        info = summary[trace_id]
        status = "connected" if info["connected"] else "DISCONNECTED"
        print(
            f"trace {trace_id}: {info['spans']} spans across "
            f"{len(info['pids'])} processes, roots={info['roots']} "
            f"[{status}]",
            file=out,
        )
    if not summary:
        print(
            "no traced spans buffered; send traced requests "
            "(trace_sample > 0) or use --probe",
            file=out,
        )
    if args.out is None and summary:
        print(json.dumps(doc), file=out)
    return 0


def _parse_endpoint(spec: str) -> "Tuple[str, int]":
    """Parse a ``HOST:PORT`` endpoint argument."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {spec!r}"
        )
    return host, int(port)


def cmd_serve(args: argparse.Namespace, out: IO[str]) -> int:
    import asyncio
    import logging

    from .service.server import ANCServer, ServerConfig

    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    primary_host, primary_port = None, 0
    if args.role == "follower":
        if args.primary is None:
            print("error: --role follower requires --primary HOST:PORT", file=out)
            return 2
        primary_host, primary_port = _parse_endpoint(args.primary)
    graph, names = read_edge_list(args.edgelist)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        engine=args.engine,
        batch_size=args.batch_size,
        max_latency=args.max_latency,
        max_pending=args.max_pending,
        data_dir=args.data_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_interval=args.checkpoint_interval,
        metrics_interval=args.metrics_interval,
        role=args.role,
        primary_host=primary_host,
        primary_port=primary_port,
        replica_id=args.replica_id or "",
        poll_interval=args.poll_interval,
        audit_interval=args.audit_interval,
        profile=args.profile,
        profile_hz=args.profile_hz,
    )
    server = ANCServer(graph, names, config=config, params=_params_from(args))
    try:
        asyncio.run(
            server.run(announce=lambda line: print(line, file=out, flush=True))
        )
    except KeyboardInterrupt:
        return 130
    return 0


def cmd_shard_serve(args: argparse.Namespace, out: IO[str]) -> int:
    import asyncio
    import logging

    from .shard import RouterConfig, ShardDeployment, ShardRouter

    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.shards < 1:
        print("error: --shards must be >= 1", file=out)
        return 2
    graph, names = read_edge_list(args.edgelist)
    deployment = ShardDeployment(
        graph,
        names,
        shards=args.shards,
        seed=args.map_seed,
        engine=args.engine,
        params=_params_from(args),
        data_dir=args.data_dir,
        batch_size=args.batch_size,
        max_latency=args.max_latency,
        max_pending=args.max_pending,
        checkpoint_every=args.checkpoint_every,
    )
    config = RouterConfig(
        host=args.host,
        port=args.port,
        fanout_timeout=args.fanout_timeout,
        stats_poll_interval=args.stats_poll_interval,
    )
    router = ShardRouter(deployment, config=config)
    try:
        asyncio.run(
            router.run(announce=lambda line: print(line, file=out, flush=True))
        )
    except KeyboardInterrupt:
        return 130
    return 0


def cmd_read_serve(args: argparse.Namespace, out: IO[str]) -> int:
    import asyncio
    import logging

    from .readpath import ReadRouter, ReadRouterConfig

    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ReadRouterConfig(
        host=args.host,
        port=args.port,
        heartbeat_interval=args.heartbeat_interval,
        forward_timeout=args.forward_timeout,
        max_staleness=args.max_staleness,
        primary_read_rate=args.primary_read_rate,
        primary_read_burst=args.primary_read_burst,
    )
    router = ReadRouter(
        _parse_endpoint(args.primary),
        followers=[_parse_endpoint(spec) for spec in args.follower],
        config=config,
    )
    try:
        asyncio.run(
            router.run(announce=lambda line: print(line, file=out, flush=True))
        )
    except KeyboardInterrupt:
        return 130
    return 0


def cmd_shardmap(args: argparse.Namespace, out: IO[str]) -> int:
    import json

    from .service.client import ServiceError
    from .shard import ShardMap, format_shard_doc, format_shardmap, shard_status

    if args.endpoint is not None:
        host, port = _parse_endpoint(args.endpoint)
        try:
            doc = shard_status(host, port, timeout=args.timeout)
        except (ServiceError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=out)
            return 1
        if args.format == "json":
            print(json.dumps(doc, indent=2, sort_keys=True), file=out)
        else:
            for line in format_shard_doc(doc):
                print(line, file=out)
        return 0
    if args.edgelist is None:
        print("error: provide an edge list or --from HOST:PORT", file=out)
        return 2
    graph, _names = read_edge_list(args.edgelist)
    smap = ShardMap.build(graph, args.shards, seed=args.map_seed)
    if args.format == "json":
        print(json.dumps(smap.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        for line in format_shardmap(smap):
            print(line, file=out)
    return 0


def cmd_datasets(args: argparse.Namespace, out: IO[str]) -> int:
    from .bench.reporting import format_table
    from .workloads.datasets import table1_rows

    print(format_table(table1_rows(), title="Table I stand-ins"), file=out)
    return 0


def cmd_lint(args: argparse.Namespace, out: IO[str]) -> int:
    from pathlib import Path

    from .analysis import (
        LintCache,
        all_rules,
        all_whole_program_rules,
        apply_baseline,
        build_project,
        lint_paths,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        rules_digest,
        save_baseline,
    )

    if args.list_rules:
        catalogue = [(r.name, r.summary) for r in all_rules()]
        catalogue += [
            (r.name, f"[whole-program] {r.summary}")
            for r in all_whole_program_rules()
        ]
        width = max(len(name) for name, _ in catalogue)
        for name, summary in sorted(catalogue):
            print(f"{name.ljust(width)}  {summary}", file=out)
        return 0
    if args.list_ops:
        from .analysis.rules.protocol import op_inventory

        rows = op_inventory(build_project(args.paths))
        print("| op | handlers | router | emitters |", file=out)
        print("|---|---|---|---|", file=out)
        for row in rows:
            print(
                f"| `{row['op']}` | {row['handlers']} | {row['routing']} "
                f"| {row['emitters']} |",
                file=out,
            )
        return 0
    # Comma-joined values compose with repeated flags:
    # --select a,b --select c  ->  [a, b, c].
    select = None
    if args.select is not None:
        select = [
            name.strip()
            for chunk in args.select
            for name in chunk.split(",")
            if name.strip()
        ]
    cache = None
    if args.cache is not None:
        names = [r.name for r in all_rules()]
        names += [r.name for r in all_whole_program_rules()]
        cache = LintCache(Path(args.cache), rules_digest(names))
    try:
        result = lint_paths(args.paths, select=select, cache=cache)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=out)
        return 2
    baseline_note = ""
    if args.update_baseline:
        if args.baseline is None:
            print("error: --update-baseline requires --baseline FILE", file=out)
            return 2
        save_baseline(Path(args.baseline), result)
        baseline_note = (
            f"baseline updated: {len(result.findings)} accepted findings "
            f"written to {args.baseline}"
        )
        result.findings = []
    elif args.baseline is not None:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        result, matched, stale = apply_baseline(result, baseline)
        matched_total = sum(matched.values())
        if matched_total or stale:
            baseline_note = (
                f"baseline: {matched_total} finding"
                f"{'' if matched_total == 1 else 's'} suppressed"
                + (f", {len(stale)} stale entries" if stale else "")
            )
    if args.format == "json":
        rendered = render_json(result)
    elif args.format == "sarif":
        rendered = render_sarif(result)
    else:
        rendered = render_text(result)
        if baseline_note:
            rendered += f"\n{baseline_note}"
    print(rendered, file=out)
    return 0 if result.ok else 1


def cmd_chaos(args: argparse.Namespace, out: IO[str]) -> int:
    from .faults.chaos import (
        SCENARIOS,
        report_lines,
        run_matrix,
        write_report,
    )

    if args.list_scenarios:
        width = max(len(s.name) for s in SCENARIOS)
        for scenario in SCENARIOS:
            print(
                f"{scenario.name.ljust(width)}  [{scenario.mode}] "
                f"expect={scenario.expect}: {scenario.description}",
                file=out,
            )
        return 0
    try:
        report = run_matrix(
            seeds=tuple(args.seeds),
            only=args.scenarios or None,
            workdir=args.workdir,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=out)
        return 2
    for line in report_lines(report):
        print(line, file=out)
    if args.out is not None:
        write_report(report, args.out)
        print(f"report written to {args.out}", file=out)
    # Silent divergence is the unforgivable outcome; any out-of-contract
    # cell also fails the run so CI catches regressions in the contracts.
    if report["silent_divergence"] or report["ok"] != report["total"]:
        return 1
    return 0


def cmd_promote(args: argparse.Namespace, out: IO[str]) -> int:
    from .replica import ReplicationError, promote
    from .service.client import ServiceError

    old = _parse_endpoint(args.old_primary) if args.old_primary else None
    try:
        summary = promote(
            _parse_endpoint(args.follower),
            old_primary=old,
            timeout=args.timeout,
            catchup_timeout=args.catchup_timeout,
        )
    except (OSError, ServiceError, ReplicationError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    print(
        f"promoted {summary['promoted']} to primary at epoch "
        f"{summary['epoch']}",
        file=out,
    )
    if summary["fenced_old"]:
        print(
            f"fenced old primary (epoch {summary['old_epoch']}, "
            f"{summary['old_entries']} committed entries drained)",
            file=out,
        )
    elif old is not None:
        print(
            "old primary unreachable (not fenced); keep it down or "
            "restart it as a follower",
            file=out,
        )
    return 0


def cmd_replicas(args: argparse.Namespace, out: IO[str]) -> int:
    from .replica import replication_status
    from .service.client import ServiceError

    try:
        status = replication_status(
            _parse_endpoint(args.endpoint), timeout=args.timeout
        )
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    print(
        f"{status['endpoint']}  role={status['role']} "
        f"epoch={status['epoch']} entries={status['entries']}",
        file=out,
    )
    replicas = status.get("replicas")
    if isinstance(replicas, dict) and replicas:
        for follower, info in sorted(replicas.items()):
            print(
                f"  follower {follower}: applied={info.get('applied')} "
                f"lag={info.get('lag')} age={info.get('age')}s "
                f"apply_age={info.get('apply_age')}s",
                file=out,
            )
    else:
        print("  no followers have fetched from this node", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anc",
        description="Clustering Activation Networks (ICDE 2022) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="graph statistics")
    p_info.add_argument("edgelist")
    p_info.set_defaults(func=cmd_info)

    p_cluster = sub.add_parser("cluster", help="cluster a static graph")
    p_cluster.add_argument("edgelist")
    p_cluster.add_argument(
        "--method",
        choices=("anc", "louvain", "scan", "attractor"),
        default="anc",
    )
    p_cluster.add_argument("--level", type=int, default=None,
                           help="granularity level (ANC only; default √n)")
    p_cluster.add_argument("--min-size", type=int, default=1,
                           help="hide clusters smaller than this")
    _add_anc_params(p_cluster)
    p_cluster.set_defaults(func=cmd_cluster)

    p_stream = sub.add_parser("stream", help="replay an activation stream")
    p_stream.add_argument("edgelist", help="temporal edge list: u v t lines")
    p_stream.add_argument(
        "--engine", choices=("anco", "ancor", "ancf"), default="anco"
    )
    p_stream.add_argument("--at", type=float, action="append",
                          help="snapshot timestamp(s); default: end of stream")
    p_stream.add_argument("--query", default=None,
                          help="report only this node's local cluster")
    p_stream.add_argument("--watch", action="append", default=None,
                          help="print live cluster-change events for this "
                               "node (repeatable)")
    p_stream.add_argument("--level", type=int, default=None,
                          help="granularity level (default √n)")
    p_stream.add_argument("--min-size", type=int, default=1)
    p_stream.add_argument("--trace-out", default=None, metavar="FILE",
                          help="write a Chrome trace_event JSON of the "
                               "replay (open in chrome://tracing or "
                               "Perfetto; docs/observability.md)")
    p_stream.add_argument("--metrics-out", default=None, metavar="FILE",
                          help="write the metrics snapshot (counters, "
                               "gauges, histogram summaries) as JSON")
    p_stream.add_argument("--trace-sample", type=float, default=1.0,
                          help="fraction of root spans to record "
                               "(deterministic 1-in-N; default 1.0)")
    _add_anc_params(p_stream)
    p_stream.set_defaults(func=cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="run a long-lived streaming clustering server (docs/service.md)",
    )
    p_serve.add_argument("edgelist", help="relation network: u v (or u v t) lines")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7700,
                         help="TCP port (0 picks a free port; announced on stdout)")
    p_serve.add_argument(
        "--engine", choices=("anco", "ancor", "ancf"), default="anco"
    )
    p_serve.add_argument("--batch-size", type=int, default=64,
                         help="micro-batch flush size")
    p_serve.add_argument("--max-latency", type=float, default=0.05,
                         help="micro-batch flush latency bound (seconds)")
    p_serve.add_argument("--max-pending", type=int, default=4096,
                         help="intake queue bound (backpressure limit)")
    p_serve.add_argument("--data-dir", default=None,
                         help="durability directory (WAL + checkpoints); "
                              "omit for an in-memory server")
    p_serve.add_argument("--checkpoint-every", type=int, default=2000,
                         help="checkpoint after this many applied activations")
    p_serve.add_argument("--checkpoint-interval", type=float, default=0.0,
                         help="also checkpoint every this many seconds (0 = off)")
    p_serve.add_argument("--metrics-interval", type=float, default=30.0,
                         help="metrics log-line period in seconds (0 = off)")
    p_serve.add_argument(
        "--role", choices=("primary", "follower"), default="primary",
        help="primary = writable; follower = warm standby replicating "
             "from --primary (docs/replication.md)",
    )
    p_serve.add_argument("--primary", default=None, metavar="HOST:PORT",
                         help="primary endpoint a follower replicates from")
    p_serve.add_argument("--replica-id", default=None,
                         help="identity a follower acks under "
                              "(default: its own host:port)")
    p_serve.add_argument("--poll-interval", type=float, default=0.02,
                         help="follower fetch cadence while caught up (seconds)")
    p_serve.add_argument("--audit-interval", type=float, default=0.25,
                         help="divergence-audit cadence on a follower "
                              "(seconds; 0 = off)")
    p_serve.add_argument("--profile", action="store_true",
                         help="run the sampling wall-clock profiler from "
                              "boot (query via the 'profile' op; "
                              "docs/observability.md)")
    p_serve.add_argument("--profile-hz", type=float, default=97.0,
                         help="profiler sampling frequency (default 97)")
    _add_anc_params(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_shard = sub.add_parser(
        "shard-serve",
        help="run N partitioned engine workers behind a scatter-gather "
             "router (docs/sharding.md)",
    )
    p_shard.add_argument("edgelist", help="relation network: u v (or u v t) lines")
    p_shard.add_argument("--host", default="127.0.0.1")
    p_shard.add_argument("--port", type=int, default=7700,
                         help="router TCP port (0 picks a free port; "
                              "announced on stdout)")
    p_shard.add_argument("--shards", type=int, default=2,
                         help="number of engine worker processes")
    p_shard.add_argument("--map-seed", type=int, default=0,
                         help="shard-map seed (same graph + seed => same map)")
    p_shard.add_argument(
        "--engine", choices=("anco", "ancor", "ancf"), default="anco"
    )
    p_shard.add_argument("--batch-size", type=int, default=64,
                         help="per-worker micro-batch flush size")
    p_shard.add_argument("--max-latency", type=float, default=0.05,
                         help="per-worker micro-batch flush latency bound (seconds)")
    p_shard.add_argument("--max-pending", type=int, default=4096,
                         help="per-worker intake queue bound (backpressure limit)")
    p_shard.add_argument("--data-dir", default=None,
                         help="durability root; each shard persists under "
                              "<data-dir>/shard-<i> (omit for in-memory workers)")
    p_shard.add_argument("--checkpoint-every", type=int, default=2000,
                         help="per-worker checkpoint period (applied activations)")
    p_shard.add_argument("--fanout-timeout", type=float, default=10.0,
                         help="scatter-gather deadline per request "
                              "(seconds; 0 = wait forever)")
    p_shard.add_argument("--stats-poll-interval", type=float, default=0.0,
                         help="background per-shard lag/queue polling period "
                              "(seconds; 0 = off)")
    _add_anc_params(p_shard)
    p_shard.set_defaults(func=cmd_shard_serve)

    p_read = sub.add_parser(
        "read-serve",
        help="run the read-path router: writes to the primary, "
             "session-tokened reads fanned across its followers "
             "(docs/replication.md)",
    )
    p_read.add_argument("primary", metavar="HOST:PORT",
                        help="the fleet's current primary")
    p_read.add_argument("--follower", action="append", default=[],
                        metavar="HOST:PORT",
                        help="a follower to route reads to (repeatable; "
                             "followers acking under host:port ids also "
                             "auto-register from the primary's replicas view)")
    p_read.add_argument("--host", default="127.0.0.1")
    p_read.add_argument("--port", type=int, default=7800,
                        help="router TCP port (0 picks a free port; "
                             "announced on stdout)")
    p_read.add_argument("--heartbeat-interval", type=float, default=0.25,
                        help="fleet heartbeat cadence (seconds; role/epoch/"
                             "lag refresh and follower auto-registration)")
    p_read.add_argument("--forward-timeout", type=float, default=30.0,
                        help="per-attempt deadline of one forwarded request "
                             "(seconds; 0 = wait forever)")
    p_read.add_argument("--max-staleness", type=int, default=None,
                        help="router-imposed bound on how many records a "
                             "serving follower may trail the primary "
                             "(default: only what each request asks for)")
    p_read.add_argument("--primary-read-rate", type=float, default=200.0,
                        help="sustained reads/second budget for shedding "
                             "reads to the primary when no follower can "
                             "serve (0 = unlimited)")
    p_read.add_argument("--primary-read-burst", type=float, default=64.0,
                        help="burst capacity of the primary read budget")
    p_read.set_defaults(func=cmd_read_serve)

    p_map = sub.add_parser(
        "shardmap",
        help="show how a relation graph partitions across shards",
    )
    p_map.add_argument("edgelist", nargs="?", default=None,
                       help="relation network to partition offline")
    p_map.add_argument("--shards", type=int, default=2,
                       help="number of shards for the offline plan")
    p_map.add_argument("--map-seed", type=int, default=0,
                       help="shard-map seed for the offline plan")
    p_map.add_argument("--from", dest="endpoint", default=None, metavar="HOST:PORT",
                       help="query a running router instead of planning offline")
    p_map.add_argument("--timeout", type=float, default=10.0,
                       help="request timeout when querying a router (seconds)")
    p_map.add_argument("--format", choices=("text", "json"), default="text")
    p_map.set_defaults(func=cmd_shardmap)

    p_stats = sub.add_parser(
        "stats",
        help="fetch a running server's metrics (docs/observability.md)",
    )
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, default=7700)
    p_stats.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="prom = Prometheus text exposition; json = stats + metrics",
    )
    p_stats.add_argument("--namespace", default=None,
                         help="metric name prefix (default: anc)")
    p_stats.add_argument("--fleet", action="store_true",
                         help="print the pure federated scrape (per-shard "
                              "labels, no client-side samples); meaningful "
                              "against a shard router")
    p_stats.add_argument("--timeout", type=float, default=10.0,
                         help="connection timeout in seconds")
    p_stats.set_defaults(func=cmd_stats)

    p_trace = sub.add_parser(
        "trace",
        help="assemble a merged fleet Chrome trace from a live "
             "deployment (docs/observability.md)",
    )
    p_trace.add_argument("--host", default="127.0.0.1")
    p_trace.add_argument("--port", type=int, default=7700)
    p_trace.add_argument("--out", default=None, metavar="FILE",
                         help="write the Chrome trace_event JSON here "
                              "(default: print to stdout)")
    p_trace.add_argument("--follow", action="store_true",
                         help="keep draining span buffers for --duration "
                              "seconds instead of one fetch")
    p_trace.add_argument("--duration", type=float, default=5.0,
                         help="how long --follow collects (seconds)")
    p_trace.add_argument("--interval", type=float, default=0.5,
                         help="--follow polling period (seconds)")
    p_trace.add_argument("--probe", type=int, default=0, metavar="N",
                         help="send N traced read-only requests first so "
                              "an idle fleet still yields a trace")
    p_trace.add_argument("--trace-id", default=None,
                         help="keep only this trace id in the merged doc")
    p_trace.add_argument("--timeout", type=float, default=10.0,
                         help="connection timeout in seconds")
    p_trace.set_defaults(func=cmd_trace)

    p_data = sub.add_parser("datasets", help="list the Table I stand-ins")
    p_data.set_defaults(func=cmd_datasets)

    p_lint = sub.add_parser(
        "lint",
        help="run the invariant linter (docs/static-analysis.md)",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format",
    )
    p_lint.add_argument(
        "--select", action="append", default=None, metavar="RULE",
        help="run only these rules (repeatable, comma-separable; "
        "default: all rules)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.add_argument(
        "--list-ops", action="store_true",
        help="print the protocol-op inventory table and exit",
    )
    p_lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in FILE; stale entries fail",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE from the current findings",
    )
    p_lint.add_argument(
        "--cache", default=None, metavar="FILE",
        help="incremental cache file (mtime+hash keyed)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection matrix (docs/faults.md)",
    )
    p_chaos.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenario names to run (default: the full matrix)",
    )
    p_chaos.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2], metavar="N",
        help="matrix seeds (default: 0 1 2)",
    )
    p_chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="keep scenario data directories here (default: temp dir)",
    )
    p_chaos.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON report to this file",
    )
    p_chaos.add_argument(
        "--list-scenarios", action="store_true",
        help="print the scenario catalogue and exit",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_promote = sub.add_parser(
        "promote",
        help="fail over: fence the old primary, promote a follower "
             "(docs/replication.md)",
    )
    p_promote.add_argument(
        "follower", metavar="HOST:PORT",
        help="the follower to promote to primary",
    )
    p_promote.add_argument(
        "--old-primary", default=None, metavar="HOST:PORT",
        help="fence this node first (best-effort; a dead primary is the "
             "usual failover trigger)",
    )
    p_promote.add_argument("--timeout", type=float, default=5.0,
                           help="per-request timeout in seconds")
    p_promote.add_argument(
        "--catchup-timeout", type=float, default=10.0,
        help="max seconds to wait for the follower to drain a fenced "
             "primary's committed log",
    )
    p_promote.set_defaults(func=cmd_promote)

    p_replicas = sub.add_parser(
        "replicas",
        help="one node's replication status (role, epoch, follower lag)",
    )
    p_replicas.add_argument(
        "endpoint", metavar="HOST:PORT", help="node to interrogate"
    )
    p_replicas.add_argument("--timeout", type=float, default=5.0,
                            help="connection timeout in seconds")
    p_replicas.set_defaults(func=cmd_replicas)

    return parser


def main(argv: Optional[Sequence[str]] = None, out: Optional[IO[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
