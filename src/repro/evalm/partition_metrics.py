"""Ground-truth clustering quality metrics (Section VI-A).

The paper evaluates against ground truth with three widely used measures:

* **NMI** — normalized mutual information with the Strehl–Ghosh
  normalization ``I(X;Y) / √(H(X)·H(Y))`` [34];
* **Purity** — each predicted cluster votes for its majority truth label;
* **F1-Measure** — average best-match F1, symmetrized over the two
  directions (the Yang–Leskovec convention for community F1).

All metrics operate on labelings restricted to the nodes both sides
cover, so the paper's noise rule (drop predicted clusters of size < 3)
composes naturally: filter first, then score.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping

from .contingency import (
    Clustering,
    Labeling,
    clusters_to_labeling,
    contingency,
    restrict_to_common,
)

__all__ = [
    "nmi",
    "purity",
    "f1_score",
    "adjusted_rand_index",
    "score_clustering",
]


def nmi(predicted: Labeling, truth: Labeling) -> float:
    """Normalized mutual information, ``I / √(H_p · H_t)``.

    Returns 0.0 when either side is constant (zero entropy) and the other
    is not; 1.0 when both are constant (identical trivial partitions) or
    the partitions match exactly.
    """
    joint, pred_sizes, truth_sizes, n = contingency(predicted, truth)
    if n == 0:
        return 0.0
    h_pred = _entropy(pred_sizes.values(), n)
    h_truth = _entropy(truth_sizes.values(), n)
    if h_pred == 0.0 and h_truth == 0.0:
        return 1.0
    if h_pred == 0.0 or h_truth == 0.0:
        return 0.0
    mutual = 0.0
    for (p, t), count in joint.items():
        p_joint = count / n
        mutual += p_joint * math.log(p_joint * n * n / (pred_sizes[p] * truth_sizes[t]))
    return max(0.0, mutual / math.sqrt(h_pred * h_truth))


def _entropy(counts: Iterable[int], n: int) -> float:
    h = 0.0
    for c in counts:
        if c > 0:
            p = c / n
            h -= p * math.log(p)
    return h


def purity(predicted: Labeling, truth: Labeling) -> float:
    """Fraction of nodes matching their predicted cluster's majority label."""
    joint, pred_sizes, _, n = contingency(predicted, truth)
    if n == 0:
        return 0.0
    best: Dict[Hashable, int] = {}
    for (p, _t), count in joint.items():
        if count > best.get(p, 0):
            best[p] = count
    return sum(best.values()) / n


def f1_score(predicted: Labeling, truth: Labeling) -> float:
    """Average best-match F1, symmetrized over both directions.

    For each truth cluster take the best F1 against any predicted cluster
    (size-weighted average), and vice versa; return the mean of the two
    directions.
    """
    pred, tru = restrict_to_common(predicted, truth)
    if not pred:
        return 0.0
    pred_clusters = _group(pred)
    truth_clusters = _group(tru)
    return 0.5 * (
        _avg_best_f1(truth_clusters, pred_clusters)
        + _avg_best_f1(pred_clusters, truth_clusters)
    )


def _group(labeling: Mapping[int, Hashable]) -> List[frozenset]:
    groups: Dict[Hashable, set] = {}
    for v, lab in labeling.items():
        groups.setdefault(lab, set()).add(v)
    return [frozenset(g) for g in groups.values()]


def _avg_best_f1(reference: List[frozenset], candidates: List[frozenset]) -> float:
    """Size-weighted average, over reference sets, of the best-match F1."""
    if not reference or not candidates:
        return 0.0
    # Index candidates by member for sparse overlap computation.
    member_of: Dict[int, List[int]] = {}
    for idx, cand in enumerate(candidates):
        for v in cand:
            member_of.setdefault(v, []).append(idx)
    total_nodes = sum(len(r) for r in reference)
    weighted = 0.0
    for ref in reference:
        overlaps: Dict[int, int] = {}
        for v in ref:
            for idx in member_of.get(v, ()):
                overlaps[idx] = overlaps.get(idx, 0) + 1
        best = 0.0
        for idx, inter in overlaps.items():
            prec = inter / len(candidates[idx])
            rec = inter / len(ref)
            best = max(best, 2 * prec * rec / (prec + rec))
        weighted += best * len(ref)
    return weighted / total_nodes


def adjusted_rand_index(predicted: Labeling, truth: Labeling) -> float:
    """Adjusted Rand Index over the common nodes.

    ``(RI - E[RI]) / (max RI - E[RI])``: 1.0 for identical partitions,
    ~0.0 for independent ones, can be negative for worse-than-chance
    agreement.  A standard companion to NMI that, unlike NMI, is not
    biased toward many small clusters.
    """
    joint, pred_sizes, truth_sizes, n = contingency(predicted, truth)
    if n < 2:
        return 1.0 if n == 1 else 0.0

    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0

    sum_joint = sum(comb2(c) for c in joint.values())
    sum_pred = sum(comb2(c) for c in pred_sizes.values())
    sum_truth = sum(comb2(c) for c in truth_sizes.values())
    total = comb2(n)
    expected = sum_pred * sum_truth / total
    max_index = 0.5 * (sum_pred + sum_truth)
    if max_index == expected:
        return 1.0 if sum_joint == expected else 0.0
    return (sum_joint - expected) / (max_index - expected)


def score_clustering(
    clusters: Clustering,
    truth: Labeling,
    *,
    min_size: int = 3,
) -> Dict[str, float]:
    """NMI / Purity / F1 for a clustering after the paper's noise rule.

    ``min_size`` filters small predicted clusters before scoring
    (the paper removes clusters under 3 nodes).
    """
    kept = [c for c in clusters if len(c) >= min_size]
    predicted = clusters_to_labeling(kept)
    return {
        "nmi": nmi(predicted, truth),
        "purity": purity(predicted, truth),
        "f1": f1_score(predicted, truth),
        "ari": adjusted_rand_index(predicted, truth),
        "clusters": float(len(kept)),
    }
