"""Contingency-table plumbing shared by the partition-quality metrics.

A *clustering* here is a list of clusters (each a list of node ids); a
*labeling* is a mapping node → label.  The metrics of Section VI-A compare
a predicted clustering against ground truth over the nodes both sides
cover, after the paper's noise rule (clusters of fewer than 3 nodes are
dropped) has been applied by the caller.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

__all__ = [
    "clusters_to_labeling",
    "labeling_to_clusters",
    "filter_noise",
    "restrict_to_common",
    "contingency",
]

Clustering = Sequence[Sequence[int]]
Labeling = Mapping[int, Hashable]


def clusters_to_labeling(clusters: Clustering) -> Dict[int, int]:
    """Turn a list of clusters into ``{node: cluster_index}``.

    Raises if a node appears in more than one cluster — every metric here
    assumes a partition.
    """
    labeling: Dict[int, int] = {}
    for idx, cluster in enumerate(clusters):
        for v in cluster:
            if v in labeling:
                raise ValueError(f"node {v} appears in clusters {labeling[v]} and {idx}")
            labeling[v] = idx
    return labeling


def labeling_to_clusters(labeling: Labeling) -> List[List[int]]:
    """Group a labeling into sorted clusters ordered by min node."""
    groups: Dict[Hashable, List[int]] = {}
    for v, lab in labeling.items():
        groups.setdefault(lab, []).append(v)
    clusters = [sorted(g) for g in groups.values()]
    clusters.sort(key=lambda c: c[0])
    return clusters


def filter_noise(clusters: Clustering, min_size: int = 3) -> List[List[int]]:
    """Drop clusters smaller than ``min_size`` (the paper's noise rule)."""
    return [list(c) for c in clusters if len(c) >= min_size]


def restrict_to_common(
    predicted: Labeling, truth: Labeling
) -> Tuple[Dict[int, Hashable], Dict[int, Hashable]]:
    """Restrict both labelings to the nodes they share.

    After noise removal the predicted labeling may not cover every node;
    metrics are computed on the covered intersection, which is how the
    paper's "removed" clusters behave.
    """
    common = set(predicted) & set(truth)
    return (
        {v: predicted[v] for v in common},
        {v: truth[v] for v in common},
    )


def contingency(
    predicted: Labeling, truth: Labeling
) -> Tuple[Counter, Counter, Counter, int]:
    """Joint and marginal counts over the common nodes.

    Returns ``(joint, pred_sizes, truth_sizes, n)`` where ``joint`` counts
    ``(pred_label, truth_label)`` pairs.
    """
    pred, tru = restrict_to_common(predicted, truth)
    joint: Counter = Counter()
    pred_sizes: Counter = Counter()
    truth_sizes: Counter = Counter()
    for v, p in pred.items():
        t = tru[v]
        joint[(p, t)] += 1
        pred_sizes[p] += 1
        truth_sizes[t] += 1
    return joint, pred_sizes, truth_sizes, len(pred)
