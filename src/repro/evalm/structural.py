"""Structural clustering quality: modularity and conductance (Section VI-A).

* **Modularity** [23] — Newman's ``Q`` over a (optionally weighted)
  partition: ``Q = Σ_c (w_in(c)/W - (vol(c)/(2W))²)`` with ``W`` the total
  edge weight and ``vol`` the weighted degree sum.
* **Conductance** [40] — per cluster ``cut(S) / min(vol(S), vol(V\\S))``;
  the dataset-level score is the size-weighted average over clusters with
  non-zero volume (lower is better).

Both accept an optional edge-weight table so they apply equally to the
static graphs of Table III and the activeness-weighted snapshots of the
activation-network experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..graph.graph import Edge, Graph, edge_key

__all__ = [
    "total_weight",
    "weighted_degrees",
    "modularity",
    "cluster_conductance",
    "average_conductance",
    "structural_scores",
]

Clustering = Sequence[Sequence[int]]
Weights = Optional[Mapping[Edge, float]]


def _edge_weight(weights: Weights, u: int, v: int) -> float:
    if weights is None:
        return 1.0
    return weights.get(edge_key(u, v), 0.0)


def total_weight(graph: Graph, weights: Weights = None) -> float:
    """Sum of edge weights ``W`` (edge count when unweighted)."""
    if weights is None:
        return float(graph.m)
    return sum(weights.get(e, 0.0) for e in graph.edges())


def weighted_degrees(graph: Graph, weights: Weights = None) -> List[float]:
    """Weighted degree (volume contribution) per node."""
    deg = [0.0] * graph.n
    for u, v in graph.edges():
        w = _edge_weight(weights, u, v)
        deg[u] += w
        deg[v] += w
    return deg


def modularity(graph: Graph, clusters: Clustering, weights: Weights = None) -> float:
    """Newman modularity ``Q`` of a (partial) partition.

    Nodes not covered by any cluster contribute only to the total volume,
    matching how the paper scores clusterings whose noise clusters were
    removed.
    """
    w_total = total_weight(graph, weights)
    if w_total <= 0.0:
        return 0.0
    deg = weighted_degrees(graph, weights)
    membership: Dict[int, int] = {}
    for idx, cluster in enumerate(clusters):
        for v in cluster:
            if v in membership:
                raise ValueError(f"node {v} is in two clusters")
            membership[v] = idx
    w_in = [0.0] * len(clusters)
    vol = [0.0] * len(clusters)
    for u, v in graph.edges():
        cu, cv = membership.get(u), membership.get(v)
        if cu is not None and cu == cv:
            w_in[cu] += _edge_weight(weights, u, v)
    for v, c in membership.items():
        vol[c] += deg[v]
    q = 0.0
    for idx in range(len(clusters)):
        q += w_in[idx] / w_total - (vol[idx] / (2.0 * w_total)) ** 2
    return q


def cluster_conductance(
    graph: Graph, cluster: Iterable[int], weights: Weights = None
) -> float:
    """Conductance of one cluster: ``cut(S) / min(vol(S), vol(V\\S))``.

    Returns 0.0 for clusters with no boundary, 1.0 when either side has
    zero volume (degenerate).
    """
    members = set(cluster)
    cut = 0.0
    vol_in = 0.0
    for u in members:
        for v in graph.neighbors(u):
            w = _edge_weight(weights, u, v)
            vol_in += w
            if v not in members:
                cut += w
    vol_total = 2.0 * total_weight(graph, weights)
    vol_out = vol_total - vol_in
    denom = min(vol_in, vol_out)
    if denom <= 0.0:
        return 1.0 if cut > 0 else 0.0
    return cut / denom


def average_conductance(
    graph: Graph, clusters: Clustering, weights: Weights = None
) -> float:
    """Size-weighted average conductance over the clusters (lower = better)."""
    total_size = sum(len(c) for c in clusters)
    if total_size == 0:
        return 1.0
    acc = 0.0
    for cluster in clusters:
        acc += cluster_conductance(graph, cluster, weights) * len(cluster)
    return acc / total_size


def structural_scores(
    graph: Graph,
    clusters: Clustering,
    weights: Weights = None,
    *,
    min_size: int = 3,
) -> Dict[str, float]:
    """Modularity + conductance after the paper's noise rule."""
    kept = [c for c in clusters if len(c) >= min_size]
    return {
        "modularity": modularity(graph, kept, weights),
        "conductance": average_conductance(graph, kept, weights),
        "clusters": float(len(kept)),
    }
