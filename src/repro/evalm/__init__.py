"""Clustering quality metrics: ground-truth (NMI/Purity/F1) and structural
(modularity/conductance), plus contingency plumbing."""

from .contingency import (
    clusters_to_labeling,
    filter_noise,
    labeling_to_clusters,
    restrict_to_common,
)
from .partition_metrics import (
    adjusted_rand_index,
    f1_score,
    nmi,
    purity,
    score_clustering,
)
from .structural import (
    average_conductance,
    cluster_conductance,
    modularity,
    structural_scores,
)

__all__ = [
    "clusters_to_labeling",
    "filter_noise",
    "labeling_to_clusters",
    "restrict_to_common",
    "adjusted_rand_index",
    "f1_score",
    "nmi",
    "purity",
    "score_clustering",
    "average_conductance",
    "cluster_conductance",
    "modularity",
    "structural_scores",
]
