"""repro — reproduction of "Clustering Activation Networks" (ICDE 2022).

A pure-Python library for clustering *activation networks*: graphs whose
edges are repeatedly re-activated by a timestamped stream, with edge
activeness decaying exponentially between activations.  The package
implements the paper's full pipeline —

* the **global decay factor** that makes the time-decay scheme
  maintainable at O(1) per activation (:mod:`repro.core.decay`);
* the **local-reinforcement similarity** ``S_t`` combining structural
  cohesiveness with activeness (:mod:`repro.core.reinforcement`,
  :mod:`repro.core.metric`);
* the **pyramid index** of Voronoi partitions with bounded incremental
  updates (:mod:`repro.index`);
* the **ANC engines** — offline ANCF, online ANCO, hybrid ANCOR
  (:mod:`repro.core.anc`);
* five baseline clustering algorithms, quality metrics, synthetic dataset
  and stream generators, and a benchmark harness reproducing every table
  and figure of the paper's evaluation (:mod:`repro.baselines`,
  :mod:`repro.evalm`, :mod:`repro.workloads`, :mod:`repro.bench`).

Quickstart::

    from repro import ANCO, ANCParams, Activation
    from repro.workloads.datasets import load_dataset

    data = load_dataset("CO")                    # synthetic stand-in
    engine = ANCO(data.graph, ANCParams(lam=0.1, k=4))
    for act in data.default_stream():
        engine.process(act)
    clusters = engine.clusters()                 # Θ(√n) granularity
    mine = engine.cluster_of(v=0)                # local query
"""

from .core import (
    ANCF,
    ANCO,
    ANCOR,
    ANCParams,
    Activation,
    ActivationStream,
    ActiveSimilarity,
    Activeness,
    DecayClock,
    NodeRole,
    SimilarityFunction,
    ValueKind,
    make_engine,
)
from .graph import Graph, GraphBuilder, edge_key
from .index import ClusterQueryEngine, PyramidIndex, VoronoiPartition
from .monitor import ClusterChange, ClusterWatcher

__version__ = "1.0.0"

__all__ = [
    "ANCF",
    "ANCO",
    "ANCOR",
    "ANCParams",
    "Activation",
    "ActivationStream",
    "ActiveSimilarity",
    "Activeness",
    "DecayClock",
    "NodeRole",
    "SimilarityFunction",
    "ValueKind",
    "make_engine",
    "Graph",
    "GraphBuilder",
    "edge_key",
    "ClusterQueryEngine",
    "PyramidIndex",
    "VoronoiPartition",
    "ClusterChange",
    "ClusterWatcher",
    "__version__",
]
