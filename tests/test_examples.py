"""Smoke test: every script under ``examples/`` runs end to end.

Each example is executed as a real subprocess (the way a reader would
run it) with ``REPRO_EXAMPLE_QUICK=1``, which the heavier scripts honor
by scaling their workloads down.  The assertion is deliberately shallow
— exit code 0 and non-empty output — because the examples' job is to
demonstrate APIs, and the APIs themselves are covered by the unit suite.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    env = dict(
        os.environ,
        PYTHONPATH=str(ROOT / "src"),
        REPRO_EXAMPLE_QUICK="1",
    )
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=180,
        cwd=ROOT,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
