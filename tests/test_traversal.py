"""Unit tests for BFS / components / Dijkstra primitives."""


import pytest

from repro.graph.graph import Graph
from repro.graph.generators import grid_graph, path_graph
from repro.graph.traversal import (
    INF,
    bfs_order,
    connected_components,
    dijkstra,
    edge_weight_map,
    eccentricity_upper_bound,
    multi_source_dijkstra,
    shortest_path,
)


def unit_weight(u: int, v: int) -> float:
    return 1.0


class TestBfs:
    def test_order_starts_at_source(self, path10):
        order = bfs_order(path10, 3)
        assert order[0] == 3
        assert set(order) == set(range(10))

    def test_unreachable_excluded(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert set(bfs_order(g, 0)) == {0, 1}


class TestComponents:
    def test_single_component(self, triangle):
        comps = connected_components(triangle)
        assert comps == [[0, 1, 2]]

    def test_multiple_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert comps == [[0, 1], [2, 3], [4]]

    def test_restricted_to_node_subset(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        comps = connected_components(g, nodes=[0, 1, 3])
        assert comps == [[0, 1], [3]]

    def test_isolated_nodes_are_singletons(self):
        g = Graph(3)
        assert connected_components(g) == [[0], [1], [2]]


class TestDijkstra:
    def test_path_graph_distances(self, path10):
        dist, parent = dijkstra(path10, 0, unit_weight)
        assert dist == [float(i) for i in range(10)]
        assert parent[0] == -1
        assert all(parent[i] == i - 1 for i in range(1, 10))

    def test_weighted_shortcut(self):
        # 0-1-2 with weights 1 each, plus direct 0-2 with weight 3.
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        weights = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 3.0}
        dist, parent = dijkstra(g, 0, edge_weight_map(weights))
        assert dist[2] == 2.0
        assert parent[2] == 1

    def test_unreachable_is_inf(self):
        g = Graph(3, [(0, 1)])
        dist, _ = dijkstra(g, 0, unit_weight)
        assert dist[2] == INF

    def test_grid_corner_to_corner(self):
        g = grid_graph(4, 4)
        dist, _ = dijkstra(g, 0, unit_weight)
        assert dist[15] == 6.0  # Manhattan distance


class TestMultiSourceDijkstra:
    def test_single_source_matches_dijkstra(self, grid_5x5):
        d1, p1 = dijkstra(grid_5x5, 0, unit_weight)
        d2, s2, p2 = multi_source_dijkstra(grid_5x5, [0], unit_weight)
        assert d1 == d2
        assert all(s == 0 for s in s2)

    def test_two_sources_partition_path(self, path10):
        dist, seed, parent = multi_source_dijkstra(path10, [0, 9], unit_weight)
        # Nodes 0-4 closest to 0 (ties to smaller seed), 5-9 to 9.
        assert seed[:5] == [0] * 5
        assert seed[5:] == [9] * 5

    def test_tie_breaks_to_smaller_seed(self):
        g = path_graph(3)  # 0-1-2, sources 0 and 2, node 1 equidistant
        _, seed, _ = multi_source_dijkstra(g, [2, 0], unit_weight)
        assert seed[1] == 0

    def test_seeds_have_zero_distance_no_parent(self, grid_5x5):
        dist, seed, parent = multi_source_dijkstra(grid_5x5, [3, 17], unit_weight)
        for s in (3, 17):
            assert dist[s] == 0.0
            assert seed[s] == s
            assert parent[s] == -1

    def test_unreachable_nodes_marked(self):
        g = Graph(4, [(0, 1)])
        dist, seed, parent = multi_source_dijkstra(g, [0], unit_weight)
        assert seed[2] == -1 and seed[3] == -1
        assert dist[2] == INF

    def test_parents_form_shortest_path_forest(self, medium_planted):
        graph, _ = medium_planted
        sources = [0, 50, 100]
        dist, seed, parent = multi_source_dijkstra(graph, sources, unit_weight)
        for v in graph.nodes():
            if v in sources or seed[v] < 0:
                continue
            p = parent[v]
            assert p >= 0
            assert dist[v] == pytest.approx(dist[p] + 1.0)
            assert seed[v] == seed[p]


class TestShortestPath:
    def test_path_endpoints(self, grid_5x5):
        d, path = shortest_path(grid_5x5, 0, 24, unit_weight)
        assert d == 8.0
        assert path[0] == 0 and path[-1] == 24
        assert len(path) == 9

    def test_unreachable_returns_empty(self):
        g = Graph(3, [(0, 1)])
        d, path = shortest_path(g, 0, 2, unit_weight)
        assert d == INF
        assert path == []

    def test_source_equals_target(self, triangle):
        d, path = shortest_path(triangle, 1, 1, unit_weight)
        assert d == 0.0
        assert path == [1]


class TestEccentricity:
    def test_path_ends(self, path10):
        assert eccentricity_upper_bound(path10, 0) == 9
        assert eccentricity_upper_bound(path10, 5) == 5

    def test_clique_is_one(self, triangle):
        assert eccentricity_upper_bound(triangle, 0) == 1
