"""Shared fixtures: small canonical graphs and pre-built engines.

Also the suite's hygiene plumbing:

* every test runs with the **global** :mod:`random` state pinned to a
  fixed seed and restored afterwards, so tests that (accidentally or
  deliberately) touch the module-level RNG neither depend on execution
  order nor perturb later tests — the suite is ``pytest -p randomly``
  / ``-p no:randomly`` indifferent;
* the ``chaos`` marker gates the fault-injection matrix
  (``tests/chaos/``): those tests only run under ``--chaos`` or
  ``ANC_CHAOS=1``, keeping the tier-1 suite fast.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.anc import ANCO, ANCParams
from repro.graph.generators import barbell_graph, grid_graph, path_graph, planted_partition
from repro.graph.graph import Graph


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help="run the chaos (fault-injection matrix) tests",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection matrix tests (slow; enable with --chaos or ANC_CHAOS=1)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: "list[pytest.Item]"
) -> None:
    if config.getoption("--chaos") or os.environ.get("ANC_CHAOS") == "1":
        return
    skip = pytest.mark.skip(reason="chaos tests need --chaos or ANC_CHAOS=1")
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(autouse=True)
def pinned_global_random():
    """Pin the module-level RNG per test; restore the state afterwards."""
    state = random.getstate()
    random.seed(0xA17C)
    try:
        yield
    finally:
        random.setstate(state)


@pytest.fixture
def triangle() -> Graph:
    """K3."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square_with_diagonal() -> Graph:
    """4-cycle plus one diagonal."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])


@pytest.fixture
def barbell() -> Graph:
    """Two K5s joined by a single edge — the canonical 2-cluster graph."""
    return barbell_graph(5, bridge=1)


@pytest.fixture
def small_planted():
    """60-node planted partition with 4 communities (graph, labels)."""
    return planted_partition(60, 4, p_in=0.5, p_out=0.02, seed=11)


@pytest.fixture
def medium_planted():
    """150-node planted partition with 6 communities (graph, labels)."""
    return planted_partition(150, 6, p_in=0.4, p_out=0.01, seed=5)


@pytest.fixture
def grid_5x5() -> Graph:
    return grid_graph(5, 5)


@pytest.fixture
def path10() -> Graph:
    return path_graph(10)


@pytest.fixture
def paper_figure2_graph() -> Graph:
    """A 13-node graph in the spirit of the paper's Figure 2 example."""
    edges = [
        (0, 1), (0, 2), (1, 2),          # v1,v2,v3 triangle
        (0, 3), (3, 12),                 # v4 and v13 hang off v1
        (3, 6), (6, 7),                  # v4-v7-v8 chain
        (4, 5), (5, 8), (5, 9), (4, 8),  # v5,v6,v9,v10 blob
        (5, 9), (8, 9),
        (7, 10), (7, 11), (10, 11),      # v8,v11,v12 triangle
        (2, 4), (9, 10),                 # cross links
    ]
    return Graph(13, edges)


@pytest.fixture
def quick_params() -> ANCParams:
    """Cheap ANC parameters for unit tests."""
    return ANCParams(rep=1, k=2, seed=0, rescale_every=64)


@pytest.fixture
def small_engine(small_planted, quick_params) -> ANCO:
    graph, _ = small_planted
    return ANCO(graph, quick_params)
