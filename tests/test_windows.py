"""Tests for the sliding-window and interval temporal models."""

import pytest

from repro.core.activation import Activation
from repro.core.windows import IntervalEdgeModel, SlidingWindowActiveness
from repro.graph.graph import Graph


@pytest.fixture
def path3():
    return Graph(3, [(0, 1), (1, 2)])


class TestSlidingWindow:
    def test_counts_in_window(self, path3):
        model = SlidingWindowActiveness(path3, window=5.0)
        model.on_activation(0, 1, 1.0)
        model.on_activation(0, 1, 2.0)
        assert model.value(0, 1) == 2

    def test_expiry_at_window_edge(self, path3):
        model = SlidingWindowActiveness(path3, window=5.0)
        model.on_activation(0, 1, 1.0)
        model.advance(6.0)
        assert model.value(0, 1) == 0  # t - W = 1.0, boundary expires

    def test_partial_expiry(self, path3):
        model = SlidingWindowActiveness(path3, window=3.0)
        model.on_activation(0, 1, 1.0)
        model.on_activation(0, 1, 3.0)
        model.advance(4.5)
        assert model.value(0, 1) == 1

    def test_abrupt_forgetting_vs_decay(self, path3):
        """The model's defining weakness: one step past the window the
        edge looks identical to a never-active edge."""
        model = SlidingWindowActiveness(path3, window=2.0)
        for t in range(1, 6):
            model.on_activation(0, 1, float(t))
        model.advance(7.5)
        assert model.value(0, 1) == 0
        assert model.value(1, 2) == 0  # indistinguishable

    def test_time_monotonic(self, path3):
        model = SlidingWindowActiveness(path3, window=1.0)
        model.on_activation(0, 1, 5.0)
        with pytest.raises(ValueError):
            model.on_activation(0, 1, 4.0)
        with pytest.raises(ValueError):
            model.advance(1.0)

    def test_non_edge_rejected(self, path3):
        model = SlidingWindowActiveness(path3, window=1.0)
        with pytest.raises(ValueError):
            model.on_activation(0, 2, 1.0)

    def test_window_validation(self, path3):
        with pytest.raises(ValueError):
            SlidingWindowActiveness(path3, window=0.0)

    def test_snapshot_weights_smoothing(self, path3):
        model = SlidingWindowActiveness(path3, window=5.0)
        model.on_activation(0, 1, 1.0)
        weights = model.snapshot_weights(smoothing=0.5)
        assert weights[(0, 1)] == 1.0
        assert weights[(1, 2)] == 0.5

    def test_expiry_scan_cost_is_edge_count(self, path3):
        model = SlidingWindowActiveness(path3, window=5.0)
        assert model.total_expiry_scan_cost() == path3.m


class TestIntervalModel:
    def test_membership(self, path3):
        model = IntervalEdgeModel(path3)
        model.add_interval(0, 1, 2.0, 5.0)
        assert model.is_active(0, 1, 2.0)
        assert model.is_active(0, 1, 5.0)
        assert not model.is_active(0, 1, 5.1)
        assert not model.is_active(1, 2, 3.0)

    def test_union_of_intervals(self, path3):
        model = IntervalEdgeModel(path3)
        model.add_interval(0, 1, 1.0, 2.0)
        model.add_interval(0, 1, 4.0, 6.0)
        assert model.is_active(0, 1, 1.5)
        assert not model.is_active(0, 1, 3.0)
        assert model.is_active(0, 1, 5.0)

    def test_active_at(self, path3):
        model = IntervalEdgeModel(path3)
        model.add_interval(0, 1, 0.0, 10.0)
        model.add_interval(1, 2, 5.0, 6.0)
        assert model.active_at(1.0) == [(0, 1)]
        assert set(model.active_at(5.5)) == {(0, 1), (1, 2)}

    def test_validation(self, path3):
        model = IntervalEdgeModel(path3)
        with pytest.raises(ValueError):
            model.add_interval(0, 1, 5.0, 2.0)
        with pytest.raises(ValueError):
            model.add_interval(0, 2, 1.0, 2.0)

    def test_snapshot_weights(self, path3):
        model = IntervalEdgeModel(path3)
        model.add_interval(0, 1, 0.0, 4.0)
        weights = model.snapshot_weights(2.0, smoothing=0.1)
        assert weights[(0, 1)] == 1.0
        assert weights[(1, 2)] == 0.1

    def test_sessionization_merges_close_activations(self, path3):
        acts = [
            Activation(0, 1, 1.0),
            Activation(0, 1, 2.0),   # gap 1 <= 2 -> same session
            Activation(0, 1, 10.0),  # gap 8 > 2 -> new session
        ]
        model = IntervalEdgeModel.from_activations(path3, acts, session_gap=2.0)
        assert model.intervals_of(0, 1) == [(1.0, 2.0), (10.0, 10.0)]

    def test_sessionization_multiple_edges(self, path3):
        acts = [
            Activation(0, 1, 1.0),
            Activation(1, 2, 1.5),
            Activation(0, 1, 2.0),
        ]
        model = IntervalEdgeModel.from_activations(path3, acts, session_gap=5.0)
        assert model.intervals_of(0, 1) == [(1.0, 2.0)]
        assert model.intervals_of(1, 2) == [(1.5, 1.5)]

    def test_sessionization_gap_validation(self, path3):
        with pytest.raises(ValueError):
            IntervalEdgeModel.from_activations(path3, [], session_gap=0.0)


class TestModelsDisagreeWhereExpected:
    def test_decay_remembers_what_window_forgets(self, path3):
        """The paper's motivating contrast: after the window passes, the
        sliding-window model has forgotten a historically strong edge
        while the time-decay scheme still ranks it above a never-active
        one."""
        from repro.core.decay import Activeness, DecayClock

        window = SlidingWindowActiveness(path3, window=2.0)
        clock = DecayClock(lam=0.1)
        decay = Activeness(clock)
        for t in range(1, 11):
            window.on_activation(0, 1, float(t))
            decay.on_activation(0, 1, float(t))
        window.advance(15.0)
        clock.advance(15.0)
        assert window.value(0, 1) == window.value(1, 2) == 0
        assert decay.value(0, 1) > decay.value(1, 2)
