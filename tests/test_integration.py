"""End-to-end integration tests across the full pipeline."""

import math

import pytest

from repro import ANCF, ANCO, ANCOR, ANCParams
from repro.baselines import louvain, spectral_clustering
from repro.evalm import modularity, score_clustering
from repro.workloads import build_case_study, community_biased_stream, load_dataset


class TestFullPipelineOnDataset:
    def test_co_dataset_stream_end_to_end(self):
        data = load_dataset("CO")
        params = ANCParams(rep=1, k=2, seed=0, rescale_every=256)
        engine = ANCO(data.graph, params)
        stream = data.default_stream(timestamps=10)
        engine.process_stream(stream)
        engine.index.check_consistency()
        clusters = engine.clusters()
        assert sum(len(c) for c in clusters) == data.graph.n
        scores = score_clustering(clusters, data.truth())
        assert 0.0 <= scores["nmi"] <= 1.0

    def test_quality_beats_random_assignment(self):
        data = load_dataset("CA")
        params = ANCParams(rep=2, k=4, seed=0, eps=0.25, mu=2)
        stream = community_biased_stream(
            data.graph, data.labels, timestamps=8, fraction=0.15,
            intra_bias=0.95, seed=2,
        )
        engine = ANCO(data.graph, params)
        engine.process_stream(stream)
        truth = data.truth()
        _, clusters = engine.queries.clusters_closest_to(
            len(data.truth_clusters()), min_size=3
        )
        anc_nmi = score_clustering(clusters, truth)["nmi"]
        random_pred = [[v for v in data.graph.nodes() if v % 9 == r] for r in range(9)]
        random_nmi = score_clustering(random_pred, truth, min_size=1)["nmi"]
        assert anc_nmi > random_nmi + 0.2

    def test_zoom_in_and_out_chain(self):
        data = load_dataset("CO")
        engine = ANCO(data.graph, ANCParams(rep=1, k=2, seed=0))
        level = engine.queries.sqrt_n_level()
        finer = engine.zoom_in(level)
        coarser = engine.zoom_out(level)
        c_mid = len(engine.clusters(level))
        c_coarse = len(engine.clusters(coarser))
        # Coarser granularity has at most as many seeds, typically fewer clusters.
        assert c_coarse <= c_mid + 2
        assert finer >= level >= coarser


class TestProblemStatementQueries:
    """The three query types of Problem 1."""

    @pytest.fixture(scope="class")
    def engine(self):
        data = load_dataset("CO")
        engine = ANCO(data.graph, ANCParams(rep=1, k=4, seed=3))
        engine.process_stream(data.default_stream(timestamps=5))
        return engine

    def test_report_all_clusters_theta_sqrt_n(self, engine):
        clusters = engine.clusters()  # default = sqrt-n granularity
        n = engine.graph.n
        # Θ(√n) clusters with generous constants.
        assert math.sqrt(n) / 4 <= len(clusters) <= 6 * math.sqrt(n)

    def test_granularity_count_is_log_n(self, engine):
        assert engine.queries.num_levels == math.ceil(math.log2(engine.graph.n))

    def test_local_smallest_cluster_then_zoom_out(self, engine):
        v = 7
        level, cluster = engine.queries.smallest_cluster_of(v)
        assert v in cluster
        sizes = [len(cluster)]
        while level > 1:
            level = engine.zoom_out(level)
            bigger = engine.cluster_of(v, level)
            assert v in bigger
            sizes.append(len(bigger))
            if level == 1:
                break
        # Zooming out never shrinks the containing cluster (same index).
        assert sizes[-1] >= sizes[0]

    def test_local_cluster_at_sqrt_granularity(self, engine):
        v = 3
        cluster = engine.cluster_of(v)
        assert v in cluster
        # Consistent with the global even clustering at the same level.
        from repro.index.clustering import even_clustering

        level = engine.queries.sqrt_n_level()
        globally = even_clustering(engine.index, level)
        containing = next(c for c in globally if v in c)
        assert cluster == containing


class TestCaseStudyNarrative:
    """Fig 11 / Section VI-C: cluster membership follows collaborations."""

    #: Granularity level used by the narrative checks (the paper's l3).
    LEVEL = 3

    @pytest.fixture(scope="class")
    def timeline(self):
        cs = build_case_study()
        params = ANCParams(lam=0.1, rep=3, k=4, seed=2, eps=0.12, mu=2)
        engine = ANCOR(cs.graph, params, reinforce_interval=5.0)
        membership = {}
        batches = dict(cs.stream.batches_by_timestamp())
        for year in range(1, 31):
            batch = batches.get(float(year), [])
            engine.process_batch(batch)
            if year in (10, 20, 30):
                membership[year] = tuple(engine.cluster_of(8, self.LEVEL))
        return cs, membership

    def test_v8_with_v7_at_t10(self, timeline):
        """v8 collaborates with v7 in years 5-11: same cluster at t10."""
        _, membership = timeline
        assert 7 in membership[10]

    def test_v8_leaves_v7_joins_v0_by_t20(self, timeline):
        """By t20 the v7 collaboration has decayed (ended t11) while the
        v0 collaboration (t11-t30) is live."""
        _, membership = timeline
        cluster = membership[20]
        assert 0 in cluster
        assert 7 not in cluster

    def test_v8_with_v26_at_t30(self, timeline):
        """The v26 collaboration (t23 on) is live at t30."""
        _, membership = timeline
        assert 26 in membership[30]

    def test_clusters_are_never_the_whole_graph_at_l3(self, timeline):
        cs, membership = timeline
        for year in (10, 20, 30):
            assert len(membership[year]) < cs.graph.n


class TestCrossValidationWithBaselines:
    def test_anc_and_louvain_agree_on_obvious_structure(self):
        data = load_dataset("CA")
        engine = ANCF(data.graph, ANCParams(rep=3, k=4, seed=0, eps=0.25, mu=2))
        louvain_clusters = louvain(data.graph)
        louv_q = modularity(data.graph, louvain_clusters)
        # Best ANC granularity: Louvain optimizes Q directly, so ANC should
        # be within striking range at its best level (the paper reports
        # ~18% lower for ANCF9 at the matched granularity).
        anc_q = max(
            modularity(
                data.graph,
                [c for c in engine.clusters(level) if len(c) >= 3],
            )
            for level in range(1, engine.queries.num_levels + 1)
        )
        assert anc_q > 0.25 * louv_q

    def test_spectral_truth_is_usable_reference(self):
        data = load_dataset("CO")
        k = max(2, int(2 * math.sqrt(data.graph.n)))
        clusters = spectral_clustering(data.graph, k, seed=0)
        assert sum(len(c) for c in clusters) == data.graph.n
