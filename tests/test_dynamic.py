"""Tests for live edge insertion (relation-network growth)."""

import pytest

from repro.core.activation import Activation
from repro.core.anc import ANCO, ANCParams
from repro.graph.graph import Graph
from repro.index.dynamic import (
    add_relation_edge,
    insert_edge_into_index,
    register_edge_in_metric,
)
from repro.index.pyramid import PyramidIndex

QUICK = ANCParams(rep=1, k=2, seed=0, rescale_every=64, mu=2, eps=0.25)


class TestInsertIntoIndex:
    def test_partitions_match_fresh_rebuild(self, medium_planted):
        graph, _ = medium_planted
        # Hold one edge back, build, then insert it live.
        edges = list(graph.edges())
        held = edges[17]
        reduced = Graph(graph.n, [e for e in edges if e != held])
        weights = {e: 1.0 for e in reduced.edges()}
        index = PyramidIndex(reduced, weights, k=2, seed=3)
        reduced.add_edge(*held)
        insert_edge_into_index(index, *held, weight=1.0)
        fresh = PyramidIndex(reduced, index.weights_view(), k=2, seed=3)
        for p_new, p_ref in zip(index.partitions(), fresh.partitions()):
            assert p_new.seed == p_ref.seed
            for v in reduced.nodes():
                assert p_new.dist[v] == pytest.approx(p_ref.dist[v], rel=1e-9)
        index.check_consistency()

    def test_insert_can_connect_components(self):
        g = Graph(4, [(0, 1), (2, 3)])
        index = PyramidIndex(g, {e: 1.0 for e in g.edges()}, k=2, seed=0)
        g.add_edge(1, 2)
        insert_edge_into_index(index, 1, 2, weight=1.0)
        # Every partition now reaches all nodes from its level-1 seed.
        for pyramid in index.pyramids:
            part = pyramid.partition(1)
            assert all(s >= 0 for s in part.seed)
        index.check_consistency()

    def test_validation(self, triangle):
        index = PyramidIndex(triangle, {e: 1.0 for e in triangle.edges()}, k=1)
        with pytest.raises(ValueError):
            insert_edge_into_index(index, 0, 1, weight=1.0)  # already weighted
        with pytest.raises(ValueError):
            insert_edge_into_index(index, 0, 1, weight=-1.0)


class TestRegisterInMetric:
    def test_initial_conditions_at_current_time(self, small_planted):
        from repro.core.metric import SimilarityFunction

        graph, _ = small_planted
        edges = list(graph.edges())
        held = edges[5]
        reduced = Graph(graph.n, [e for e in edges if e != held])
        metric = SimilarityFunction(reduced, rep=0, mu=2, lam=0.2)
        # Advance time so the global factor is non-trivial.
        metric.clock.advance(3.0)
        reduced.add_edge(*held)
        register_edge_in_metric(metric, *held)
        assert metric.activeness.value(*held) == pytest.approx(1.0)
        assert metric.value(*held) == pytest.approx(1.0)

    def test_double_registration_rejected(self, triangle):
        from repro.core.metric import SimilarityFunction

        metric = SimilarityFunction(triangle, rep=0, mu=2)
        with pytest.raises(ValueError):
            register_edge_in_metric(metric, 0, 1)

    def test_strengths_updated(self, small_planted):
        from repro.core.metric import SimilarityFunction

        graph, _ = small_planted
        edges = list(graph.edges())
        held = edges[0]
        reduced = Graph(graph.n, [e for e in edges if e != held])
        metric = SimilarityFunction(reduced, rep=0, mu=2)
        s_before = metric.sigma.strength(held[0])
        reduced.add_edge(*held)
        register_edge_in_metric(metric, *held)
        assert metric.sigma.strength(held[0]) > s_before


class TestEngineGrowth:
    def test_add_edge_then_activate(self, small_planted):
        graph, _ = small_planted
        engine = ANCO(graph.copy(), QUICK)
        # Two nodes with no current edge.
        u, v = next(
            (a, b)
            for a in engine.graph.nodes()
            for b in engine.graph.nodes()
            if a < b and not engine.graph.has_edge(a, b)
        )
        touched = add_relation_edge(engine, u, v)
        assert engine.graph.has_edge(u, v)
        assert touched >= 0
        engine.index.check_consistency()
        # The new edge is a first-class citizen: it can be activated.
        engine.process(Activation(u, v, engine.now + 1.0))
        engine.index.check_consistency()
        assert engine.metric.activeness.value(u, v) > 1.0

    def test_existing_edge_is_noop(self, small_planted):
        graph, _ = small_planted
        engine = ANCO(graph.copy(), QUICK)
        e = engine.graph.edges()[0]
        assert add_relation_edge(engine, *e) == 0

    def test_growth_under_stream(self, small_planted):
        """Interleave insertions and activations; index stays exact."""
        graph, _ = small_planted
        engine = ANCO(graph.copy(), QUICK)
        t = 0.0
        candidates = [
            (a, b)
            for a in engine.graph.nodes()
            for b in engine.graph.nodes()
            if a < b and not engine.graph.has_edge(a, b)
        ][:5]
        edges = list(engine.graph.edges())
        for i, new_edge in enumerate(candidates):
            t += 1.0
            engine.process(Activation(*edges[i], t))
            add_relation_edge(engine, *new_edge)
        fresh = PyramidIndex(
            engine.graph, engine.index.weights_view(), k=QUICK.k, seed=QUICK.seed
        )
        for p_inc, p_ref in zip(engine.index.partitions(), fresh.partitions()):
            assert p_inc.seed == p_ref.seed
            for v in engine.graph.nodes():
                assert p_inc.dist[v] == pytest.approx(p_ref.dist[v], rel=1e-6)
