"""Differential parity harness: the array backend vs the dict oracle.

The structure-of-arrays backend (``repro.core.arrays`` +
``repro.index.array_index``) promises to be *bit-for-bit*
interchangeable with the dict-of-dicts pipeline — not approximately
equal, byte-identical: ``engine_signature`` reprs every float, the
chaos matrix and the replication auditor compare exact digests, and
checkpoints must restore under either backend.  This suite drives both
backends through identical workloads and asserts exactly that:

* **property-based stream parity** (hypothesis, ``derandomize=True`` so
  CI and local runs explore the identical pinned example set): random
  planted-partition graphs, random activation streams with shared-tick
  events, random rescale periods — identical signatures, identical
  cluster maps at *every* pyramid granularity, identical checkpoint
  documents;
* **interleaved zooms**: query traffic (clusters / cluster_of /
  zoom_in / zoom_out) interleaved mid-stream answers identically and
  perturbs nothing;
* **rescale boundaries**: streams that land exactly on the batched
  decay-rescale tick (including ``rescale_every=1``, a rescale per
  activation);
* **kill/recover points**: checkpoint + WAL tail written by one
  backend, recovered by *both* (checkpoints are backend-neutral), and
  the recovered engines match the never-killed oracle;
* **engine variants and subsystem paths**: ANCOR's periodic sweep,
  ANCF's refresh, dynamic edge insertion, the ParallelUpdater index
  path, the replica follower's WAL-record apply, and the per-shard
  worker slices of ``repro.shard``.

The dict backend stays the permanent oracle (``docs/engine-internals.md``);
the fault-injection half of the differential story lives in
``tests/chaos`` (``ANC_BACKEND=array`` runs every matrix cell against
the dict oracle).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import List, Tuple

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.activation import Activation  # noqa: E402
from repro.core.anc import ANCParams, make_engine  # noqa: E402
from repro.graph.generators import planted_partition  # noqa: E402
from repro.graph.graph import Graph  # noqa: E402
from repro.index.dynamic import add_relation_edge  # noqa: E402
from repro.service.snapshots import (  # noqa: E402
    CheckpointStore,
    WriteAheadLog,
    apply_activations,
    dump_engine_state,
    engine_signature,
    recover_to,
)
from repro.shard.shardmap import ShardMap  # noqa: E402

PINNED = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

BACKENDS = ("dict", "array")


def _params(backend: str, **overrides: object) -> ANCParams:
    base = dict(rep=2, k=2, seed=0, rescale_every=16, eps=0.3, mu=2)
    base.update(overrides)
    return ANCParams(engine_backend=backend, **base)  # type: ignore[arg-type]


def _pair(name: str, graph: Graph, **overrides: object):
    return tuple(
        make_engine(name, graph, _params(backend, **overrides))
        for backend in BACKENDS
    )


def _checkpoint_doc(engine) -> str:
    return json.dumps(dump_engine_state(engine), sort_keys=True)


def assert_parity(engine_d, engine_a) -> None:
    """The full oracle: signature, every granularity, checkpoint bytes."""
    assert engine_signature(engine_d) == engine_signature(engine_a)
    for level in range(1, engine_d.queries.num_levels + 1):
        assert engine_d.clusters(level) == engine_a.clusters(level), level
    assert _checkpoint_doc(engine_d) == _checkpoint_doc(engine_a)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def workload(draw, max_events: int = 50):
    """A small planted-partition graph plus a time-ordered stream.

    Time deltas of exactly 0.0 are drawn often, so most examples contain
    multi-activation ticks (the shared-timestamp decay algebra), and the
    rescale period is drawn down to 1 so batched-rescale boundaries land
    inside most streams.
    """
    graph_seed = draw(st.integers(min_value=0, max_value=50))
    graph, _labels = planted_partition(
        24, 3, p_in=0.5, p_out=0.1, seed=graph_seed
    )
    edges = list(graph.edges())
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(edges) - 1),
                st.sampled_from([0.0, 0.0, 0.5, 1.0, 2.0]),
            ),
            min_size=8,
            max_size=max_events,
        )
    )
    acts: List[Activation] = []
    t = 0.0
    for edge_idx, delta in events:
        t += delta
        u, v = edges[edge_idx]
        acts.append(Activation(u, v, t))
    rescale_every = draw(st.sampled_from([1, 2, 3, 7, 16, 64]))
    return graph, acts, rescale_every


# ----------------------------------------------------------------------
# Property-based stream parity
# ----------------------------------------------------------------------

@PINNED
@given(workload())
def test_random_stream_parity(wl):
    """Arbitrary pinned streams: signatures, all levels, checkpoint doc."""
    graph, acts, rescale_every = wl
    engine_d, engine_a = _pair("anco", graph, rescale_every=rescale_every)
    apply_activations(engine_d, acts)
    apply_activations(engine_a, acts)
    assert_parity(engine_d, engine_a)


@PINNED
@given(workload(), st.lists(st.integers(0, 6), min_size=1, max_size=4))
def test_interleaved_zoom_parity(wl, zoom_points):
    """Query traffic interleaved mid-stream: identical answers, no drift."""
    graph, acts, rescale_every = wl
    engine_d, engine_a = _pair("anco", graph, rescale_every=rescale_every)
    cut = max(1, len(acts) // 2)
    for engine in (engine_d, engine_a):
        apply_activations(engine, acts[:cut])
    for level in zoom_points:
        lvl = engine_d.queries.clamp_level(level)
        assert engine_d.zoom_in(lvl) == engine_a.zoom_in(lvl)
        assert engine_d.zoom_out(lvl) == engine_a.zoom_out(lvl)
        assert engine_d.clusters(lvl) == engine_a.clusters(lvl)
        node = acts[0].u
        assert engine_d.cluster_of(node, lvl) == engine_a.cluster_of(node, lvl)
    for engine in (engine_d, engine_a):
        apply_activations(engine, acts[cut:])
    assert_parity(engine_d, engine_a)


@PINNED
@given(workload())
def test_kill_recover_parity(wl):
    """Checkpoint + WAL tail at a mid-stream kill point, recovered by
    both backends, from stores written by both backends — all four
    recovered engines must match the never-killed oracles bitwise."""
    graph, acts, rescale_every = wl
    cut = max(1, (2 * len(acts)) // 3)
    live_d, live_a = _pair("anco", graph, rescale_every=rescale_every)
    apply_activations(live_d, acts)
    apply_activations(live_a, acts)
    expected = engine_signature(live_d)
    assert expected == engine_signature(live_a)

    with tempfile.TemporaryDirectory() as tmp:
        for writer_backend in BACKENDS:
            victim = make_engine(
                "anco", graph,
                _params(writer_backend, rescale_every=rescale_every),
            )
            store = CheckpointStore(Path(tmp) / writer_backend)
            wal = WriteAheadLog(store.wal_path)
            for act in acts:
                wal.append(act)
            apply_activations(victim, acts[:cut])
            store.write_checkpoint(victim)
            wal.close()
            del victim  # kill -9: recovery sees only the disk
            for reader_backend in BACKENDS:
                recovery = recover_to(
                    graph, store,
                    params=_params(reader_backend, rescale_every=rescale_every),
                )
                assert engine_signature(recovery.engine) == expected, (
                    writer_backend, reader_backend,
                )


# ----------------------------------------------------------------------
# Rescale boundaries (pinned deterministic cases)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rescale_every", [1, 2, 5])
def test_rescale_boundary_parity(rescale_every):
    """Streams sized to land exactly on batched-rescale ticks."""
    graph, _labels = planted_partition(30, 3, p_in=0.5, p_out=0.08, seed=7)
    edges = list(graph.edges())
    # 3 * rescale_every activations: the final event lands on a boundary.
    acts = [
        Activation(*edges[(3 * i) % len(edges)], float(i // 4))
        for i in range(3 * rescale_every)
    ]
    engine_d, engine_a = _pair("anco", graph, rescale_every=rescale_every)
    apply_activations(engine_d, acts)
    apply_activations(engine_a, acts)
    assert_parity(engine_d, engine_a)


# ----------------------------------------------------------------------
# Engine variants and subsystem paths
# ----------------------------------------------------------------------

def _fixed_workload(seed: int = 3) -> Tuple[Graph, List[Activation]]:
    graph, labels = planted_partition(32, 4, p_in=0.5, p_out=0.06, seed=seed)
    from repro.workloads.streams import community_biased_stream

    stream = community_biased_stream(
        graph, labels, timestamps=8, fraction=0.1, seed=seed
    )
    return graph, list(stream)


@pytest.mark.parametrize("name", ["anco", "ancor", "ancf"])
def test_engine_variant_parity(name):
    """ANCO, ANCOR (periodic sweep) and ANCF (refresh) all agree."""
    graph, acts = _fixed_workload()
    engine_d, engine_a = _pair(name, graph)
    apply_activations(engine_d, acts)
    apply_activations(engine_a, acts)
    if name == "ancf":
        engine_d.refresh()
        engine_a.refresh()
    assert_parity(engine_d, engine_a)


def test_dynamic_edge_insertion_parity():
    """add_relation_edge mid-stream: interning order is part of parity.

    Each engine gets its own graph instance — ``add_relation_edge``
    mutates the relation network, so a shared graph would leak the first
    engine's insertions into the second engine's ``has_edge`` guard.
    """
    _graph, acts = _fixed_workload(seed=5)
    cut = len(acts) // 2
    engines = []
    for backend in BACKENDS:
        graph, _ = planted_partition(32, 4, p_in=0.5, p_out=0.06, seed=5)
        engine = make_engine("anco", graph, _params(backend))
        apply_activations(engine, acts[:cut])
        nodes = sorted(graph.nodes())
        added = 0
        for u in nodes:
            for v in nodes[::-1]:
                if u < v and not graph.has_edge(u, v) and added < 3:
                    add_relation_edge(engine, u, v)
                    added += 1
        apply_activations(engine, acts[cut:])
        engines.append(engine)
    assert_parity(*engines)


def test_parallel_updater_parity():
    """update_workers > 0 routes repairs through the ParallelUpdater."""
    graph, acts = _fixed_workload(seed=9)
    engine_d, engine_a = _pair("anco", graph, update_workers=2)
    apply_activations(engine_d, acts)
    apply_activations(engine_a, acts)
    assert_parity(engine_d, engine_a)


def test_replica_apply_parity():
    """The follower apply path: WAL records replayed through
    ``apply_activations`` reproduce the primary bitwise on both
    backends (the replication auditor compares these digests live)."""
    graph, acts = _fixed_workload(seed=11)
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(Path(tmp))
        wal = WriteAheadLog(store.wal_path)
        for act in acts:
            wal.append(act)
        wal.close()
        replayed = list(WriteAheadLog.replay(store.wal_path))
    assert replayed == acts
    engine_d, engine_a = _pair("anco", graph)
    apply_activations(engine_d, replayed)
    apply_activations(engine_a, replayed)
    assert_parity(engine_d, engine_a)


def test_shard_worker_parity():
    """Per-shard engine slices (the shard-worker state machine) agree
    backend-to-backend, shard by shard."""
    from repro.faults.chaos import SHARD_PARAMS, build_shard_workload
    from dataclasses import replace

    graph, acts = build_shard_workload(17)
    smap = ShardMap.build(graph, 2, seed=0)
    for shard in range(2):
        shard_graph = smap.shard_graph(shard)
        shard_acts = [
            a for a in acts if smap.shard_of_edge(a.u, a.v) == shard
        ]
        engines = tuple(
            make_engine(
                "ANCO",
                shard_graph,
                replace(SHARD_PARAMS, engine_backend=backend),
            )
            for backend in BACKENDS
        )
        for engine in engines:
            apply_activations(engine, shard_acts)
        assert engine_signature(engines[0]) == engine_signature(engines[1])
