"""Exhaustive verification on all small graphs.

Property-based tests sample the input space; these tests *enumerate* it.
Every graph on 4 nodes (all 2^6 edge subsets) and a dense slice of
5-node graphs go through the core primitives, checked against brute
force.  Failures here localize bugs precisely — there is no shrinking
step between "a graph exists that breaks X" and the counterexample.
"""


import pytest

from repro.core.decay import Activeness, DecayClock
from repro.core.similarity import ActiveSimilarity, naive_sigma
from repro.graph.graph import Graph, edge_key
from repro.graph.traversal import INF, connected_components, multi_source_dijkstra
from repro.index.pyramid import PyramidIndex
from repro.index.voronoi import VoronoiPartition


def all_graphs(n):
    """Every labeled simple graph on n nodes."""
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for bits in range(2 ** len(pairs)):
        edges = [pairs[k] for k in range(len(pairs)) if bits >> k & 1]
        yield Graph(n, edges)


def brute_force_sssp(graph, sources, weight):
    """Bellman-Ford-ish reference (no heaps, no tie-break subtleties)."""
    dist = {v: INF for v in graph.nodes()}
    for s in sources:
        dist[s] = 0.0
    for _ in range(graph.n):
        for u, v in graph.edges():
            w = weight(u, v)
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
            if dist[v] + w < dist[u]:
                dist[u] = dist[v] + w
    return dist


class TestAllFourNodeGraphs:
    def test_components_match_brute_force(self):
        for graph in all_graphs(4):
            comps = connected_components(graph)
            # Brute force: transitive closure by repeated expansion.
            reach = {v: {v} for v in graph.nodes()}
            changed = True
            while changed:
                changed = False
                for u, v in graph.edges():
                    merged = reach[u] | reach[v]
                    for x in list(merged):
                        if reach[x] != merged:
                            reach[x] = merged
                            changed = True
                        merged = reach[x] | merged
            expected = {frozenset(s) for s in reach.values()}
            assert {frozenset(c) for c in comps} == expected

    def test_multi_source_dijkstra_distances(self):
        for graph in all_graphs(4):
            for k_seeds in (1, 2):
                seeds = list(range(k_seeds))
                dist, seed, parent = multi_source_dijkstra(
                    graph, seeds, lambda u, v: 1.0
                )
                reference = brute_force_sssp(graph, seeds, lambda u, v: 1.0)
                for v in graph.nodes():
                    assert dist[v] == reference[v], (graph.edges(), v)

    def test_voronoi_update_decrease_everywhere(self):
        """On every 4-node graph with an edge: halve one edge's weight and
        demand exact agreement with a rebuild."""
        for graph in all_graphs(4):
            if graph.m == 0:
                continue
            weights = {e: 1.0 for e in graph.edges()}

            def weight(u, v):
                return weights[edge_key(u, v)]

            part = VoronoiPartition(graph, [0], weight)
            target = graph.edges()[0]
            weights[target] = 0.5
            part.update_decrease(*target)
            dist, seed, _ = multi_source_dijkstra(graph, [0], weight)
            assert part.dist == dist, graph.edges()
            assert part.seed == seed, graph.edges()
            part.check_consistency()

    def test_voronoi_update_increase_everywhere(self):
        for graph in all_graphs(4):
            if graph.m == 0:
                continue
            weights = {e: 1.0 for e in graph.edges()}

            def weight(u, v):
                return weights[edge_key(u, v)]

            part = VoronoiPartition(graph, [0], weight)
            target = graph.edges()[0]
            weights[target] = 3.0
            part.update_increase(*target)
            dist, seed, _ = multi_source_dijkstra(graph, [0], weight)
            assert part.dist == dist, graph.edges()
            assert part.seed == seed, graph.edges()
            part.check_consistency()

    def test_sigma_bounds_and_roles_partition(self):
        for graph in all_graphs(4):
            clock = DecayClock(0.1)
            act = Activeness(clock, initial={e: 1.0 for e in graph.edges()})
            sim = ActiveSimilarity(graph, act, eps=0.3, mu=2)
            actual = {e: 1.0 for e in graph.edges()}
            for u, v in graph.edges():
                s = sim.sigma(u, v)
                assert 0.0 <= s <= 1.0
                assert s == pytest.approx(naive_sigma(graph, actual, u, v))
            counts = sim.role_counts()
            assert sum(counts.values()) == graph.n

    def test_clusterings_are_partitions_everywhere(self):
        from repro.index.clustering import even_clustering, power_clustering

        for graph in all_graphs(4):
            if graph.m == 0:
                continue
            weights = {e: 1.0 for e in graph.edges()}
            index = PyramidIndex(graph, weights, k=2, seed=0)
            for level in range(1, index.num_levels + 1):
                for clusters in (
                    even_clustering(index, level),
                    power_clustering(index, level),
                ):
                    flat = sorted(v for c in clusters for v in c)
                    assert flat == list(graph.nodes()), graph.edges()


class TestFiveNodeSlice:
    """5-node graphs: every graph containing a fixed spanning path (so
    the slice stays connected and the checks exercise deeper trees)."""

    def five_node_connected(self):
        base = [(0, 1), (1, 2), (2, 3), (3, 4)]
        extras = [(0, 2), (0, 3), (0, 4), (1, 3), (1, 4), (2, 4)]
        for bits in range(2 ** len(extras)):
            edges = base + [extras[k] for k in range(len(extras)) if bits >> k & 1]
            yield Graph(5, edges)

    def test_update_sequence_on_every_graph(self):
        for graph in self.five_node_connected():
            weights = {e: 1.0 for e in graph.edges()}

            def weight(u, v):
                return weights[edge_key(u, v)]

            part = VoronoiPartition(graph, [0, 4], weight)
            # Three-step deterministic update sequence.
            seq = [
                (graph.edges()[0], 0.25),
                (graph.edges()[-1], 4.0),
                (graph.edges()[len(graph.edges()) // 2], 0.5),
            ]
            for e, w in seq:
                old = weights[e]
                weights[e] = w
                part.apply_weight_change(*e, old, w)
            dist, seed, _ = multi_source_dijkstra(graph, [0, 4], weight)
            for v in graph.nodes():
                assert part.dist[v] == pytest.approx(dist[v], rel=1e-12), graph.edges()
                assert part.seed[v] == seed[v], graph.edges()
            part.check_consistency()
