"""Unit tests for the global decay factor machinery (Section IV-A)."""

import math

import pytest

from repro.core.activation import Activation, naive_activeness
from repro.core.decay import Activeness, DecayClock, ValueKind


class TestDecayClock:
    def test_initial_state(self):
        clock = DecayClock(0.1)
        assert clock.now == 0.0
        assert clock.anchor == 0.0
        assert clock.global_factor() == 1.0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            DecayClock(-0.1)

    def test_advance_updates_factor(self):
        clock = DecayClock(0.1)
        clock.advance(2.0)
        assert clock.global_factor() == pytest.approx(math.exp(-0.2))

    def test_time_cannot_go_backwards(self):
        clock = DecayClock(0.1)
        clock.advance(5.0)
        with pytest.raises(ValueError):
            clock.advance(4.0)

    def test_advance_same_time_is_noop(self):
        clock = DecayClock(0.1)
        clock.advance(1.0)
        clock.advance(1.0)
        assert clock.now == 1.0

    def test_zero_lambda_never_decays(self):
        clock = DecayClock(0.0)
        clock.advance(1000.0)
        assert clock.global_factor() == 1.0

    def test_rescale_moves_anchor(self):
        clock = DecayClock(0.1)
        clock.advance(3.0)
        clock.rescale()
        assert clock.anchor == 3.0
        assert clock.global_factor() == 1.0
        assert clock.rescale_count == 1

    def test_periodic_rescale_after_activations(self):
        clock = DecayClock(0.1, rescale_every=5)
        clock.advance(1.0)
        for _ in range(5):
            clock.note_activation()
        assert clock.rescale_count == 1

    def test_underflow_forces_rescale(self):
        clock = DecayClock(1.0, min_factor=1e-10)
        clock.advance(30.0)  # exp(-30) ~ 1e-13 < 1e-10
        assert clock.rescale_count == 1
        assert clock.global_factor() == 1.0


class TestAnchoredEdgeValues:
    def test_positive_round_trip(self):
        clock = DecayClock(0.1)
        store = clock.register(ValueKind.POSITIVE)
        store.set_actual(0, 1, 5.0)
        clock.advance(4.0)
        assert store.actual(0, 1) == pytest.approx(5.0 * math.exp(-0.4))

    def test_negative_round_trip(self):
        clock = DecayClock(0.1)
        store = clock.register(ValueKind.NEGATIVE)
        store.set_actual(0, 1, 5.0)
        clock.advance(4.0)
        assert store.actual(0, 1) == pytest.approx(5.0 / math.exp(-0.4))

    def test_neutral_is_time_invariant(self):
        clock = DecayClock(0.1)
        store = clock.register(ValueKind.NEUTRAL)
        store.set_actual(0, 1, 5.0)
        clock.advance(100.0)
        assert store.actual(0, 1) == 5.0

    def test_rescale_preserves_actual_values(self):
        clock = DecayClock(0.2)
        pos = clock.register(ValueKind.POSITIVE)
        neg = clock.register(ValueKind.NEGATIVE)
        neu = clock.register(ValueKind.NEUTRAL)
        pos.set_actual(0, 1, 3.0)
        neg.set_actual(0, 1, 7.0)
        neu.set_actual(0, 1, 2.0)
        clock.advance(5.0)
        before = (pos.actual(0, 1), neg.actual(0, 1), neu.actual(0, 1))
        clock.rescale()
        after = (pos.actual(0, 1), neg.actual(0, 1), neu.actual(0, 1))
        for b, a in zip(before, after):
            assert a == pytest.approx(b)

    def test_edge_key_normalization(self):
        clock = DecayClock(0.1)
        store = clock.register(ValueKind.POSITIVE)
        store.set_anchored(3, 1, 2.0)
        assert store.anchored(1, 3) == 2.0
        assert (1, 3) in store

    def test_add_anchored_accumulates(self):
        clock = DecayClock(0.1)
        store = clock.register(ValueKind.POSITIVE)
        store.add_anchored(0, 1, 1.0)
        store.add_anchored(1, 0, 2.0)
        assert store.anchored(0, 1) == 3.0

    def test_default_value_is_zero(self):
        clock = DecayClock(0.1)
        store = clock.register(ValueKind.POSITIVE)
        assert store.anchored(5, 6) == 0.0
        assert store.actual(5, 6) == 0.0

    def test_rescale_listener_called_with_factor(self):
        clock = DecayClock(0.1)
        seen = []
        clock.add_rescale_listener(seen.append)
        clock.advance(2.0)
        g = clock.global_factor()
        clock.rescale()
        assert seen == [pytest.approx(g)]


class TestActiveness:
    def test_matches_naive_equation1(self):
        """a_t(e) from the anchored machinery == Σ exp(-λ(t-t_i))."""
        lam = 0.1
        clock = DecayClock(lam, rescale_every=3)
        act = Activeness(clock)
        stream = [
            Activation(0, 1, 1.0),
            Activation(0, 1, 2.0),
            Activation(1, 2, 2.5),
            Activation(0, 1, 4.0),
            Activation(1, 2, 6.0),
        ]
        for a in stream:
            act.on_activation(a.u, a.v, a.t)
            clock.note_activation()
        clock.advance(8.0)
        for edge in [(0, 1), (1, 2)]:
            expected = naive_activeness(stream, edge, 8.0, lam)
            assert act.value(*edge) == pytest.approx(expected, rel=1e-9)

    def test_example1_from_paper(self):
        """Paper Example 1: λ=0.1, activations at t=0 and t=2."""
        clock = DecayClock(0.1)
        act = Activeness(clock)
        act.on_activation(8, 11, 0.0)
        clock.advance(1.0)
        assert act.value(8, 11) == pytest.approx(math.exp(-0.1), abs=1e-3)  # 0.905
        act.on_activation(8, 11, 2.0)
        assert act.value(8, 11) == pytest.approx(1 + math.exp(-0.2), abs=1e-3)  # 1.819

    def test_example2_anchored_bookkeeping(self):
        """Paper Example 2: anchored value 2.221 at t=2 before rescale."""
        clock = DecayClock(0.1)
        act = Activeness(clock)
        act.on_activation(8, 11, 0.0)
        clock.advance(2.0)
        g = clock.global_factor()
        assert g == pytest.approx(math.exp(-0.2), abs=1e-3)  # 0.819
        act.on_activation(8, 11, 2.0)
        assert act.anchored_value(8, 11) == pytest.approx(1 + 1 / g, abs=1e-3)  # 2.221
        clock.rescale()
        assert act.anchored_value(8, 11) == pytest.approx(1 + math.exp(-0.2), abs=1e-3)

    def test_initial_values(self):
        clock = DecayClock(0.1)
        act = Activeness(clock, initial={(0, 1): 1.0, (1, 2): 1.0})
        assert act.value(0, 1) == 1.0
        clock.advance(10.0)
        assert act.value(0, 1) == pytest.approx(math.exp(-1.0))

    def test_unactivated_edges_decay_at_same_pace(self):
        """Observation 1: the decay factor is edge independent."""
        clock = DecayClock(0.3)
        act = Activeness(clock, initial={(0, 1): 2.0, (2, 3): 5.0})
        clock.advance(4.0)
        ratio_a = act.value(0, 1) / 2.0
        ratio_b = act.value(2, 3) / 5.0
        assert ratio_a == pytest.approx(ratio_b)


class TestRescaleOrderDeterminism:
    """Regression: the batched rescale applies in *sorted* edge order.

    The dict and array backends store the same values in different
    physical orders (insertion order vs eid order).  ``_absorb`` must
    therefore be a deterministic function of the key set alone — sorted
    iteration — or any future accumulating absorb would silently diverge
    between backends (the latent drift the parity harness exposed).
    """

    KEYS = [(3, 7), (0, 1), (2, 9), (0, 5), (1, 2)]

    def test_absorb_visits_keys_in_sorted_order(self):
        clock = DecayClock(0.1)
        store = clock.register(ValueKind.POSITIVE)
        for key in self.KEYS:
            store.set_anchored(*key, 1.0)
        visited = []

        class Recorder(dict):
            def __setitem__(self_inner, key, value):
                visited.append(key)
                dict.__setitem__(self_inner, key, value)

        store._values = Recorder(store._values)
        store._absorb(0.5)
        assert visited == sorted(self.KEYS)

    def test_rescale_bitwise_independent_of_insertion_order(self):
        """Same key set, opposite insertion histories, identical bits."""
        results = []
        for keys in (self.KEYS, list(reversed(self.KEYS))):
            clock = DecayClock(0.1)
            store = clock.register(ValueKind.POSITIVE)
            for i, key in enumerate(keys):
                store.set_anchored(*key, 1.0 + 0.1 * key[0] + 0.01 * key[1])
            clock.advance(3.0)
            clock.rescale()
            results.append({k: v.hex() for k, v in store.items_anchored()})
        assert results[0] == results[1]

    def test_negative_kind_absorbs_sorted_too(self):
        clock = DecayClock(0.2)
        store = clock.register(ValueKind.NEGATIVE)
        visited = []

        class Recorder(dict):
            def __setitem__(self_inner, key, value):
                visited.append(key)
                dict.__setitem__(self_inner, key, value)

        for key in self.KEYS:
            store.set_anchored(*key, 2.0)
        store._values = Recorder(store._values)
        store._absorb(0.25)
        assert visited == sorted(self.KEYS)
