"""Soak test: a long, mixed-operation session against one live engine.

Interleaves everything a deployment does — activations of varying burst
sizes, idle gaps, queries at random levels, reinforcement sweeps, edge
insertions, monitoring — for a few thousand operations, then verifies
every global invariant: index ≡ fresh rebuild, vote table ≡ recount,
clusterings are partitions, activeness ≡ naive recomputation on a
sampled edge.
"""

import random

import pytest

from repro.core.activation import Activation, naive_activeness
from repro.core.anc import ANCOR, ANCParams
from repro.graph.generators import planted_partition
from repro.index.dynamic import add_relation_edge
from repro.index.pyramid import PyramidIndex
from repro.index.voting import VoteTable
from repro.monitor import ClusterWatcher


@pytest.mark.parametrize("seed", [0, 1])
def test_long_mixed_session(seed):
    rng = random.Random(seed)
    graph, labels = planted_partition(90, 5, p_in=0.4, p_out=0.02, seed=seed + 50)
    params = ANCParams(
        rep=1, k=2, seed=seed, rescale_every=97, lam=0.2, eps=0.2, mu=2
    )
    engine = ANCOR(graph, params, reinforce_interval=7.0)
    watcher = ClusterWatcher(engine)
    watched = rng.sample(list(graph.nodes()), 3)
    for v in watched:
        watcher.watch(v)

    history = []
    t = 0.0
    inserted = 0
    for step in range(150):
        t += rng.choice([0.1, 0.5, 1.0, 5.0])  # includes idle-ish gaps
        op = rng.random()
        if op < 0.75:
            # A burst of activations at this timestamp.
            burst = rng.randint(1, 12)
            edges = [rng.choice(graph.edges()) for _ in range(burst)]
            batch = sorted(Activation(u, v, t) for u, v in edges)
            history.extend(batch)
            watcher.process_batch(batch)
        elif op < 0.9:
            # Queries at a random level.
            level = rng.randint(1, engine.queries.num_levels)
            v = rng.randrange(graph.n)
            cluster = engine.cluster_of(v, level)
            assert v in cluster
        elif inserted < 5:
            # Grow the network.
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u != v and not engine.graph.has_edge(u, v):
                add_relation_edge(engine, u, v)
                inserted += 1

    # --- invariants at the end -----------------------------------------
    engine.index.check_consistency()

    # Index equals a fresh build at the final weights.
    fresh = PyramidIndex(
        engine.graph, engine.index.weights_view(), k=params.k, seed=params.seed
    )
    for p_inc, p_ref in zip(engine.index.partitions(), fresh.partitions()):
        assert p_inc.seed == p_ref.seed
        for v in engine.graph.nodes():
            assert p_inc.dist[v] == pytest.approx(p_ref.dist[v], rel=1e-6)

    # Vote table equals a full recount.
    recount = VoteTable(engine.index)
    for level in range(1, engine.queries.num_levels + 1):
        for u, v in engine.graph.edges():
            assert watcher.votes.vote(u, v, level) == recount.vote(u, v, level)

    # Watched clusters are exact.
    for v in watched:
        from repro.index.clustering import local_cluster

        level = watcher.levels[0]
        assert watcher.current_cluster(v) == frozenset(
            local_cluster(engine.index, v, level)
        )

    # Clusterings are partitions at every level.
    for level in (1, engine.queries.num_levels):
        clusters = engine.clusters(level)
        assert sorted(x for c in clusters for x in c) == list(engine.graph.nodes())

    # Activeness matches the naive Equation 1 on sampled original edges
    # (inserted edges carry synthetic initial activeness, so skip them).
    original_edges = set(graph.edges())
    sampled = rng.sample(sorted(original_edges), 5)
    final_t = engine.now
    for e in sampled:
        expected = naive_activeness(history, e, final_t, params.lam)
        expected += 1.0 * pow(2.718281828459045, -params.lam * final_t)  # initial a_0 = 1
        assert engine.metric.activeness.value(*e) == pytest.approx(
            expected, rel=1e-6, abs=1e-12
        )
