"""Tests for the synthetic graph generators."""

import random

import pytest

from repro.graph.generators import (
    barabasi_albert,
    barbell_graph,
    caveman_relaxed,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    lfr_like,
    path_graph,
    planted_partition,
    powerlaw_community_sizes,
    star_graph,
)
from repro.graph.traversal import connected_components


class TestDeterministicShapes:
    def test_path(self):
        g = path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(5)
        assert (g.n, g.m) == (5, 5)
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_barbell(self):
        g = barbell_graph(4, bridge=1)
        assert g.n == 8
        assert g.m == 2 * 6 + 1
        assert len(connected_components(g)) == 1

    def test_barbell_long_bridge(self):
        g = barbell_graph(3, bridge=3)
        assert g.n == 3 + 3 + 2
        assert len(connected_components(g)) == 1


class TestErdosRenyi:
    def test_deterministic_per_seed(self):
        assert erdos_renyi(50, 0.1, seed=1) == erdos_renyi(50, 0.1, seed=1)

    def test_density_close_to_p(self):
        g = erdos_renyi(200, 0.1, seed=2, connect=False)
        expected = 0.1 * 200 * 199 / 2
        assert 0.7 * expected < g.m < 1.3 * expected

    def test_p_zero_gives_empty_unconnected(self):
        g = erdos_renyi(10, 0.0, seed=0, connect=False)
        assert g.m == 0

    def test_connect_flag_joins_components(self):
        g = erdos_renyi(50, 0.02, seed=3, connect=True)
        assert len(connected_components(g)) == 1

    def test_p_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_p_one_is_complete(self):
        g = erdos_renyi(6, 1.0, seed=0, connect=False)
        assert g.m == 15


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(50, 3, seed=1)
        # Seed clique C(4,2)=6 edges, then 46 nodes * 3 edges.
        assert g.m == 6 + 46 * 3

    def test_heavy_tail(self):
        g = barabasi_albert(300, 2, seed=4)
        degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
        assert degrees[0] > 4 * (2 * g.m / g.n)  # hub well above mean

    def test_connected(self):
        g = barabasi_albert(100, 2, seed=5)
        assert len(connected_components(g)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)


class TestPowerlawSizes:
    def test_sums_to_n(self):
        rng = random.Random(0)
        sizes = powerlaw_community_sizes(500, 20, rng)
        assert sum(sizes) == 500

    def test_min_size_respected(self):
        rng = random.Random(1)
        sizes = powerlaw_community_sizes(300, 10, rng, min_size=5)
        assert all(s >= 5 for s in sizes)

    def test_skew_present(self):
        rng = random.Random(2)
        sizes = powerlaw_community_sizes(1000, 30, rng, exponent=2.0)
        assert max(sizes) > 3 * min(sizes)

    def test_single_community(self):
        rng = random.Random(3)
        assert powerlaw_community_sizes(50, 1, rng) == [50]

    def test_validation(self):
        with pytest.raises(ValueError):
            powerlaw_community_sizes(50, 0, random.Random(0))


class TestPlantedPartition:
    def test_labels_cover_all_nodes(self):
        g, labels = planted_partition(120, 6, seed=1)
        assert len(labels) == g.n
        assert set(labels) == set(range(6))

    def test_deterministic(self):
        g1, l1 = planted_partition(100, 5, seed=7)
        g2, l2 = planted_partition(100, 5, seed=7)
        assert g1 == g2 and l1 == l2

    def test_intra_density_exceeds_inter(self):
        g, labels = planted_partition(200, 5, p_in=0.3, p_out=0.01, seed=2)
        intra = sum(1 for u, v in g.edges() if labels[u] == labels[v])
        inter = g.m - intra
        # Normalize by available pair counts.
        from collections import Counter

        sizes = Counter(labels)
        intra_pairs = sum(s * (s - 1) // 2 for s in sizes.values())
        inter_pairs = g.n * (g.n - 1) // 2 - intra_pairs
        assert intra / intra_pairs > 5 * (inter / max(1, inter_pairs))

    def test_connected(self):
        g, _ = planted_partition(150, 8, seed=3)
        assert len(connected_components(g)) == 1


class TestLfrLike:
    def test_deterministic(self):
        g1, l1 = lfr_like(200, mixing=0.2, seed=4)
        g2, l2 = lfr_like(200, mixing=0.2, seed=4)
        assert g1 == g2 and l1 == l2

    def test_mixing_fraction_tracks_parameter(self):
        g, labels = lfr_like(400, mixing=0.25, avg_degree=10, seed=1)
        inter = sum(1 for u, v in g.edges() if labels[u] != labels[v])
        realized = inter / g.m
        assert 0.1 < realized < 0.4, realized

    def test_low_mixing_mostly_intra(self):
        g, labels = lfr_like(300, mixing=0.05, seed=2)
        inter = sum(1 for u, v in g.edges() if labels[u] != labels[v])
        assert inter / g.m < 0.15

    def test_degree_heterogeneity(self):
        g, _ = lfr_like(500, mixing=0.1, avg_degree=8, seed=3)
        degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
        assert degrees[0] > 2.5 * (2 * g.m / g.n)

    def test_connected(self):
        g, _ = lfr_like(300, mixing=0.1, seed=5)
        assert len(connected_components(g)) == 1

    def test_average_degree_near_target(self):
        g, _ = lfr_like(400, mixing=0.15, avg_degree=10, seed=6)
        assert 6 < 2 * g.m / g.n < 14

    def test_validation(self):
        with pytest.raises(ValueError):
            lfr_like(100, mixing=1.5)
        with pytest.raises(ValueError):
            lfr_like(100, avg_degree=1.0)

    def test_labels_cover_nodes(self):
        g, labels = lfr_like(250, mixing=0.2, seed=7)
        assert len(labels) == g.n


class TestCaveman:
    def test_labels_by_clique(self):
        g, labels = caveman_relaxed(4, 5, rewire_p=0.0, seed=0)
        assert labels == [v // 5 for v in range(20)]

    def test_no_rewire_gives_cliques_plus_connectors(self):
        g, _ = caveman_relaxed(3, 4, rewire_p=0.0, seed=0)
        # 3 cliques of C(4,2)=6 edges plus up to 2 connector edges.
        assert 18 <= g.m <= 20

    def test_connected(self):
        g, _ = caveman_relaxed(5, 6, rewire_p=0.1, seed=1)
        assert len(connected_components(g)) == 1
