"""Tests for repro.shard: shard map, merge semantics, router oracle.

The load-bearing property (docs/sharding.md) is pinned end to end here:
on a stream whose activations stay intra-shard, a 2-shard scatter-gather
``clusters`` answer must equal — exactly, not approximately — what one
engine over the whole graph and the whole stream would say.
"""

from __future__ import annotations

import io

import pytest

import os
import time

from repro.cli import main as cli_main
from repro.core.anc import make_engine
from repro.faults.chaos import (
    SHARD_PARAMS,
    build_shard_workload,
    RouterThread,
    ServerThread,
)
from repro.graph.generators import barbell_graph, planted_partition
from repro.graph.graph import Graph
from repro.graph.io import write_edge_list
from repro.obs import fleet_chrome_trace, fleet_trace_summary
from repro.service.client import ServiceClient
from repro.service.server import ServerConfig
from repro.shard import ShardMap, ShardDeployment, merge_clusters, merge_stats


def _disjoint_blocks(blocks=4, size=10, seed=3):
    """Disjoint union of small connected blocks (all packable)."""
    edges = []
    offset = 0
    for b in range(blocks):
        g, _ = planted_partition(size, 2, p_in=0.7, p_out=0.2, seed=seed + b)
        edges.extend((u + offset, v + offset) for u, v in g.edges())
        offset += size
    return Graph(offset, edges)


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------


class TestShardMap:
    def test_same_seed_same_map(self):
        graph = _disjoint_blocks()
        a = ShardMap.build(graph, 3, seed=7)
        b = ShardMap.build(graph, 3, seed=7)
        assert a == b
        assert a.digest() == b.digest()

    def test_digest_tracks_inputs(self):
        graph = _disjoint_blocks()
        base = ShardMap.build(graph, 3, seed=7)
        assert base.digest() != ShardMap.build(graph, 2, seed=7).digest()

    def test_every_node_and_edge_assigned(self):
        graph = _disjoint_blocks()
        smap = ShardMap.build(graph, 3, seed=0)
        assert len(smap.assignment) == graph.n
        assert all(0 <= s < 3 for s in smap.assignment)
        assert sum(smap.edge_counts()) == graph.m
        for u, v in graph.edges():
            assert 0 <= smap.shard_of_edge(u, v) < 3

    def test_components_packed_whole(self):
        # Disjoint 10-node blocks across 4 shards: every component is
        # packable, so no cross-shard edges and each block is atomic.
        graph = _disjoint_blocks(blocks=4, size=10)
        smap = ShardMap.build(graph, 4, seed=0)
        assert smap.cross_edges == ()
        for block in range(4):
            homes = {smap.shard_of(v) for v in range(block * 10, (block + 1) * 10)}
            assert len(homes) == 1

    def test_oversized_component_hash_scatters(self):
        # One connected 20-node component over 2 shards cannot pack
        # whole: the fallback scatters nodes and registers cross edges.
        graph = barbell_graph(10, bridge=1)
        smap = ShardMap.build(graph, 2, seed=0)
        assert len(set(smap.assignment)) == 2
        assert len(smap.cross_edges) > 0
        # Every cross edge is owned by one of its endpoints' shards ...
        for u, v, owner in smap.cross_edges:
            assert owner in (smap.shard_of(u), smap.shard_of(v))
            assert smap.shard_of(u) != smap.shard_of(v)
            assert smap.shard_of_edge(u, v) == owner
        # ... and the registry is exactly the set of straddling edges.
        straddling = {
            (u, v) for u, v in graph.edges()
            if smap.shard_of(u) != smap.shard_of(v)
        }
        assert {(u, v) for u, v, _ in smap.cross_edges} == straddling

    def test_shard_graph_full_node_space(self):
        graph = _disjoint_blocks()
        smap = ShardMap.build(graph, 2, seed=0)
        for shard in range(2):
            sub = smap.shard_graph(shard)
            assert sub.n == graph.n
            assert sub.m == smap.edge_counts()[shard]

    def test_non_edge_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        smap = ShardMap.build(graph, 2, seed=0)
        with pytest.raises(ValueError, match="not a relation edge"):
            smap.shard_of_edge(0, 3)
        with pytest.raises(ValueError, match="out of range"):
            smap.shard_of(99)

    def test_single_shard_owns_everything(self):
        graph = barbell_graph(6, bridge=1)
        smap = ShardMap.build(graph, 1, seed=0)
        assert set(smap.assignment) == {0}
        assert smap.cross_edges == ()
        assert smap.edge_counts() == [graph.m]

    def test_to_dict_truncates_registry_not_count(self):
        graph = barbell_graph(10, bridge=1)
        smap = ShardMap.build(graph, 2, seed=0)
        doc = smap.to_dict(max_cross=1)
        assert doc["cross_edge_count"] == len(smap.cross_edges)
        assert len(doc["cross_edges"]) == 1
        assert doc["cross_edges_truncated"] is True


# ----------------------------------------------------------------------
# Merge semantics
# ----------------------------------------------------------------------


class TestMerge:
    HOME = {"a": 0, "b": 0, "c": 1, "d": 1}

    @staticmethod
    def _payload(clusters, level=2, num_levels=4, t=1.0, applied=5):
        return {
            "level": level,
            "num_levels": num_levels,
            "t": t,
            "applied": applied,
            "clusters": clusters,
        }

    def test_home_filter_partitions_nodes(self):
        # "c" shows up in shard 0's answer (it serves the full node
        # space) but is only reported by its home shard 1.
        merged = merge_clusters(
            {
                0: self._payload([["a", "b", "c"]]),
                1: self._payload([["c", "d"]]),
            },
            self.HOME,
        )
        assert merged["clusters"] == [["a", "b"], ["c", "d"]]
        assert merged["cluster_ids"] == ["s0:0", "s1:0"]
        assert merged["cluster_shards"] == [0, 1]
        assert merged["applied"] == 10
        flat = [v for c in merged["clusters"] for v in c]
        assert sorted(flat) == ["a", "b", "c", "d"]

    def test_min_size_applies_after_home_filter(self):
        merged = merge_clusters(
            {
                0: self._payload([["a", "b", "c", "d"]]),
                1: self._payload([["c"], ["d"]]),
            },
            self.HOME,
            min_size=2,
        )
        # Shard 0's cluster is size 4 raw but only {a, b} are homed;
        # shard 1's singletons fall under the floor after filtering.
        assert merged["clusters"] == [["a", "b"]]

    def test_level_mismatch_raises(self):
        with pytest.raises(ValueError, match="disagree on granularity"):
            merge_clusters(
                {
                    0: self._payload([["a"]], level=1),
                    1: self._payload([["c"]], level=2),
                },
                self.HOME,
            )

    def test_t_is_max_and_cross_edges_ride_along(self):
        merged = merge_clusters(
            {
                0: self._payload([["a"]], t=3.0),
                1: self._payload([["c"]], t=7.0),
            },
            self.HOME,
            cross_edge_count=4,
        )
        assert merged["t"] == 7.0
        assert merged["cross_edges"] == 4

    def test_empty_payloads_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            merge_clusters({}, self.HOME)

    def test_merge_stats(self):
        merged = merge_stats(
            {
                0: {"ingested": 3, "applied": 3, "t": 2.0, "degraded": False},
                1: {"ingested": 5, "applied": 4, "t": 9.0, "degraded": True},
            }
        )
        assert merged["ingested"] == 8
        assert merged["applied"] == 7
        assert merged["t"] == 9.0
        assert merged["degraded"] is True
        assert sorted(merged["shards"]) == ["0", "1"]


# ----------------------------------------------------------------------
# CLI: shardmap planning mode
# ----------------------------------------------------------------------


class TestShardmapCli:
    def test_offline_plan(self, tmp_path):
        graph = _disjoint_blocks(blocks=2, size=8)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        out = io.StringIO()
        code = cli_main(["shardmap", str(path), "--shards", "2"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "2 shards" in text
        assert "cross-shard edges: 0" in text
        assert ShardMap.build(graph, 2, seed=0).digest() in text

    def test_requires_edgelist_or_endpoint(self):
        out = io.StringIO()
        assert cli_main(["shardmap"], out=out) == 2
        assert "edge list or --from" in out.getvalue()


# ----------------------------------------------------------------------
# End to end: 2-shard scatter-gather vs the single-engine oracle
# ----------------------------------------------------------------------


def _normalize(clusters):
    return sorted(sorted(int(v) for v in c) for c in clusters)


class TestScatterGatherOracle:
    def test_two_shard_clusters_match_single_engine(self, tmp_path):
        graph, acts = build_shard_workload(0)
        smap = ShardMap.build(graph, 2, seed=0)
        # The workload is intra-shard by construction: the oracle
        # contract below is only promised when cross_edges == 0.
        assert smap.cross_edges == ()

        oracle = make_engine("ANCO", graph, SHARD_PARAMS)
        for act in acts:
            oracle.process(act)

        deployment = ShardDeployment(
            graph,
            shards=2,
            seed=0,
            engine="anco",
            params=SHARD_PARAMS,
            data_dir=str(tmp_path / "shards"),
        )
        with RouterThread(deployment) as router:
            assert router.port is not None
            with ServiceClient("127.0.0.1", router.port, timeout=60) as client:
                batch = [[act.u, act.v, act.t] for act in acts]
                accepted = 0
                for i in range(0, len(batch), 40):
                    r = client.request(
                        "ingest_batch", items=batch[i:i + 40], key=f"oracle-b{i}"
                    )
                    accepted += int(r["accepted"])
                assert accepted == len(acts)
                assert client.sync() == len(acts)

                merged = client.request("clusters")
                assert merged["cross_edges"] == 0
                assert merged["applied"] == len(acts)
                expected = oracle.clusters(int(merged["level"]))
                assert _normalize(merged["clusters"]) == _normalize(expected)
                # Every cluster id is namespaced to a live shard.
                assert all(
                    cid.startswith(("s0:", "s1:")) for cid in merged["cluster_ids"]
                )

                # The merged answer partitions the node space exactly once.
                flat = [int(v) for c in merged["clusters"] for v in c]
                assert sorted(flat) == sorted(set(flat))

                stats = client.request("stats")["stats"]
                assert stats["applied"] == len(acts)
                assert sorted(stats["shards"]) == ["0", "1"]

    def test_router_routes_watch_zoom_changes_snapshot(self, tmp_path):
        """The six query/watch ops route through the shard tier.

        These were router 404s before the whole-program linter's
        protocol-conformance rule flagged them: the client emitted them
        and every worker handled them, but the router table had no entry.
        """
        graph, acts = build_shard_workload(0)
        smap = ShardMap.build(graph, 2, seed=0)
        deployment = ShardDeployment(
            graph,
            shards=2,
            seed=0,
            engine="anco",
            params=SHARD_PARAMS,
            data_dir=str(tmp_path / "shards"),
        )
        with RouterThread(deployment) as router:
            assert router.port is not None
            with ServiceClient("127.0.0.1", router.port, timeout=60) as client:
                batch = [[act.u, act.v, act.t] for act in acts]
                half = len(batch) // 2
                client.request("ingest_batch", items=batch[:half], key="ops-a")
                client.sync()

                node = acts[0].u
                home = smap.shard_of(node)
                watched = client.request("watch", node=node)
                assert watched["shard"] == home
                assert node in {int(v) for v in watched["cluster"]}

                # zoom_* scatter to every worker and answer with the
                # deepest level all shards serve (clamped to >= 1).
                deeper = client.request("zoom_in", level=1)["level"]
                assert isinstance(deeper, int) and deeper >= 1
                shallower = client.request("zoom_out", level=deeper)["level"]
                assert 1 <= shallower <= deeper

                client.request("ingest_batch", items=batch[half:], key="ops-b")
                client.sync()

                changes = client.request("changes")["changes"]
                assert isinstance(changes, list)
                for change in changes:
                    assert {"node", "level", "t", "joined", "left"} <= set(change)
                times = [float(c["t"]) for c in changes]
                assert times == sorted(times)

                assert client.request("unwatch", node=node)["shard"] == home

                snap = client.request("snapshot")
                assert sorted(snap["path"]) == ["0", "1"]
                assert all(isinstance(p, str) for p in snap["path"].values())
                assert snap["applied"] == len(acts)


# ----------------------------------------------------------------------
# Fleet observability: labeled federation + trace propagation (PR 8)
# ----------------------------------------------------------------------


def _wait_for(cond, *, timeout=20.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not cond():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out after {timeout}s waiting for {what}")
        time.sleep(0.01)


class TestFleetObservability:
    """The distributed-observability contracts of docs/observability.md.

    Driven end to end against real processes: a 2-shard
    :class:`ShardDeployment` (each worker its own OS process) behind an
    in-process router, plus — for the replication lane — a follower
    attached to worker 0's endpoint.
    """

    def _deploy(self, tmp_path):
        graph, acts = build_shard_workload(0)
        deployment = ShardDeployment(
            graph,
            shards=2,
            seed=0,
            engine="anco",
            params=SHARD_PARAMS,
            data_dir=str(tmp_path / "shards"),
        )
        return graph, acts, deployment

    def _ingest(self, client, acts, *, prefix):
        """Chunked keyed ingest through the router; returns request count."""
        batch = [[act.u, act.v, act.t] for act in acts]
        requests = 0
        for i in range(0, len(batch), 40):
            client.request(
                "ingest_batch", items=batch[i:i + 40], key=f"{prefix}-b{i}"
            )
            requests += 1
        return requests

    def test_two_shard_metrics_never_sums_gauges(self, tmp_path):
        """Regression: the fleet ``metrics`` answer keeps gauges per-source.

        The router used to sum everything it scattered — fine for
        counters, nonsense for gauges (shard 0's queue depth plus shard
        1's is nobody's queue depth).  The federated document must keep
        every gauge as a labeled per-source series and never collapse it
        to one number.
        """
        graph, acts, deployment = self._deploy(tmp_path)
        with RouterThread(deployment) as router:
            assert router.port is not None
            with ServiceClient("127.0.0.1", router.port, timeout=60) as client:
                self._ingest(client, acts, prefix="fed")
                assert client.sync() == len(acts)

                doc = client.request("metrics")
                fed = doc["metrics"]
                assert {"role": "router"} in fed["sources"]
                assert {"role": "worker", "shard": "0"} in fed["sources"]
                assert {"role": "worker", "shard": "1"} in fed["sources"]

                # Every gauge is a {label_str: value} mapping — never a
                # scalar, which is what a summed gauge would look like.
                assert fed["gauges"], "fleet document lost its gauges"
                for name, series in fed["gauges"].items():
                    assert isinstance(series, dict), (name, series)
                per_shard = doc["per_shard"]
                expected_depths = {
                    f'role="worker",shard="{shard}"': float(
                        per_shard[shard]["gauges"]["queue_depth"]
                    )
                    for shard in ("0", "1")
                }
                assert fed["gauges"]["queue_depth"] == expected_depths

                # Counters *are* summed: events are events.
                assert fed["counters"]["activations_ingested"] == len(acts)

                # The merged stats doc agrees: fleet queue depth is the
                # max, with the per-shard breakdown alongside.
                stats = client.request("stats")["stats"]
                depths = stats["queue_depth_per_shard"]
                assert sorted(depths) == ["0", "1"]
                assert stats["queue_depth"] == max(depths.values())

                # And the scrape endpoint renders the same series
                # labeled, one TYPE block per metric, no bare sample.
                text = client.request("metrics_text")["text"]
                assert 'anc_queue_depth{role="worker",shard="0"}' in text
                assert 'anc_queue_depth{role="worker",shard="1"}' in text
                assert text.count("# TYPE anc_queue_depth gauge") == 1
                assert "\nanc_queue_depth " not in text

    def test_traced_round_trip_spans_three_processes(self, tmp_path):
        """One traced ingest+clusters round-trip → one connected tree.

        Client and router share this test's pid; the two workers are
        spawned processes — a sampled ``clusters`` scatter therefore
        spans three distinct pids, rooted at the client span.  Sampling
        at 0.5 is asserted deterministic (requests 2, 4, 6, ...), and a
        follower attached to worker 0 contributes the replication lane
        as its own connected two-process trace.
        """
        graph, acts, deployment = self._deploy(tmp_path)
        with RouterThread(deployment) as router:
            assert router.port is not None
            with ServiceClient(
                "127.0.0.1", router.port, timeout=60, trace_sample=0.5
            ) as client:
                requests = self._ingest(client, acts, prefix="trace")
                assert client.sync() == len(acts)
                requests += 1
                if (requests + 1) % 2:
                    # Burn one request so the clusters call below lands
                    # on an even sequence number — i.e. is sampled.
                    client.request("stats")
                    requests += 1
                merged = client.request("clusters")
                requests += 1
                assert merged["applied"] == len(acts)

                # Deterministic sampling: trace ids are "<session>:<seq
                # hex>" and exactly the even-numbered requests sampled.
                client_spans = client.trace_spans()
                seqs = sorted(
                    int(str(span["trace"]).rsplit(":", 1)[1], 16)
                    for span in client_spans
                )
                assert seqs == list(range(2, requests + 1, 2))

                # Assemble the fleet trace: router + workers off the
                # wire, plus this client's own lane.
                processes = list(client.trace_fetch()["processes"])
                assert [p["process"] for p in processes] == [
                    "router",
                    "shard-0",
                    "shard-1",
                ]
                processes.append(
                    {
                        "pid": os.getpid(),
                        "process": "client",
                        "spans": client_spans,
                    }
                )
                summary = fleet_trace_summary(processes)

                clusters_tid = next(
                    str(span["trace"])
                    for span in client_spans
                    if span["name"] == "client.clusters"
                )
                info = summary[clusters_tid]
                assert info["connected"] is True
                assert info["roots"] == ["client.clusters"]
                assert len(info["pids"]) >= 3

                # A sampled ingest chunk made it through the router to
                # at least one worker process, likewise connected.
                ingest_tid = next(
                    str(span["trace"])
                    for span in client_spans
                    if span["name"] == "client.ingest_batch"
                )
                assert summary[ingest_tid]["connected"] is True
                assert len(summary[ingest_tid]["pids"]) >= 2

                # The Chrome export of just this trace keeps the pid
                # lanes and draws at least one flow arrow per hop.
                doc = fleet_chrome_trace(processes, trace_id=clusters_tid)
                slice_pids = {
                    ev["pid"] for ev in doc["traceEvents"] if ev["ph"] == "X"
                }
                assert slice_pids == set(info["pids"])
                assert sum(
                    1 for ev in doc["traceEvents"] if ev["ph"] == "s"
                ) >= 2

            # -- the replication lane: follower → worker 0 ------------
            host, port = deployment.endpoints()[0]
            follower_graph = Graph(
                graph.n, list(deployment.shard_map.shard_edges[0])
            )
            config = ServerConfig(
                port=0,
                engine="anco",
                metrics_interval=0.0,
                role="follower",
                primary_host=host,
                primary_port=port,
                replica_id="trace-follower",
                poll_interval=0.005,
                audit_interval=0.05,
            )
            with ServerThread(
                follower_graph, config=config, params=SHARD_PARAMS
            ) as handle:
                # Enabling the *follower's* tracer arms its wal_fetch
                # trace minting (sample defaults to 1.0: every fetch).
                handle.server.tracer.enable()
                with ServiceClient("127.0.0.1", port, timeout=60) as primary:
                    target = int(primary.stats()["ingested"])
                    assert target > 0
                    _wait_for(
                        lambda: handle.server.host.ingested >= target
                        and any(
                            span.name == "replica.wal_fetch"
                            for span in handle.server.tracer.spans()
                        ),
                        what="follower catch-up with a traced fetch",
                    )
                    worker_doc = primary.trace_fetch()
                    with ServiceClient(
                        "127.0.0.1", handle.port, timeout=60
                    ) as follower:
                        follower_doc = follower.trace_fetch()
                lanes = [
                    {
                        "pid": doc["pid"],
                        "process": doc["process"],
                        "spans": doc["spans"],
                    }
                    for doc in (worker_doc, follower_doc)
                ]
                wal = {
                    tid: info
                    for tid, info in fleet_trace_summary(lanes).items()
                    if tid.startswith("trace-follower:wal:")
                }
                assert wal, "no traced wal_fetch reached the primary"
                assert any(
                    info["connected"]
                    and info["roots"] == ["replica.wal_fetch"]
                    and len(info["pids"]) == 2
                    for info in wal.values()
                ), wal
