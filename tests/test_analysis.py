"""Tests for the repro.analysis invariant linter.

One true-positive and one true-negative fixture per rule, the pragma
machinery, the CLI gate, and — the point of the whole exercise — the
check that ``src/repro`` itself lints clean.
"""

import io
import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import all_rules, lint_paths, lint_source, parse_pragmas
from repro.analysis.engine import BAD_PRAGMA, PARSE_ERROR, module_name_for
from repro.analysis.rules.snapshot_immutability import published_slots
from repro.analysis.rules.writer_discipline import mutator_registry
from repro.cli import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def findings_for(source, module, rule=None):
    result = lint_source(textwrap.dedent(source), module=module)
    if rule is None:
        return result.findings
    return [f for f in result.findings if f.rule == rule]


RULE_NAMES = {
    "writer-discipline",
    "no-wall-clock-in-engine",
    "no-blocking-in-async",
    "snapshot-immutability",
    "float-equality",
    "mutable-default-arg",
    "dict-mutation-during-iteration",
    "export-consistency",
    "service-exception-discipline",
}


def test_all_rules_registered():
    assert {r.name for r in all_rules()} == RULE_NAMES


# ----------------------------------------------------------------------
# The acceptance gate: the repository's own source lints clean.
# ----------------------------------------------------------------------

def test_src_repro_lints_clean():
    result = lint_paths([SRC])
    assert result.findings == [], "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings
    )
    assert result.files > 50
    # The one sanctioned exemption (core/decay.py's exact no-op guard)
    # is counted, not silently dropped.
    assert result.suppressed.get("float-equality") == 1


# ----------------------------------------------------------------------
# writer-discipline
# ----------------------------------------------------------------------

WRITER_POSITIVE = """
    def sneaky(host, batch):
        host.engine.process_batch(batch)
"""


def test_writer_discipline_positive():
    found = findings_for(
        WRITER_POSITIVE, "repro.service.ingest", "writer-discipline"
    )
    assert len(found) == 1
    assert "process_batch" in found[0].message


def test_writer_discipline_function_mutator_positive():
    src = """
        from ..index.dynamic import insert_edge_into_index

        def grow(index, graph, metric, u, v):
            insert_edge_into_index(index, graph, metric, u, v)
    """
    found = findings_for(src, "repro.service.server", "writer-discipline")
    assert len(found) == 1
    assert "insert_edge_into_index" in found[0].message


def test_writer_discipline_allows_writer_and_nonservice_code():
    # The writer path itself may mutate ...
    assert not findings_for(
        WRITER_POSITIVE, "repro.service.engine_host", "writer-discipline"
    )
    assert not findings_for(
        WRITER_POSITIVE, "repro.service.snapshots", "writer-discipline"
    )
    # ... and so may code that owns its engine outright.
    assert not findings_for(WRITER_POSITIVE, "repro.bench.harness", "writer-discipline")
    # Read-only queries in service code are always fine.
    read_only = """
        def peek(host, level):
            return host.engine.clusters(level)
    """
    assert not findings_for(read_only, "repro.service.server", "writer-discipline")


def test_writer_discipline_covers_shard_modules():
    # The shard router/merge/admin tier is a pure reader: mutating an
    # engine there breaks the per-worker single-writer contract.
    for module in ("repro.shard.router", "repro.shard.merge", "repro.shard.admin"):
        found = findings_for(WRITER_POSITIVE, module, "writer-discipline")
        assert len(found) == 1, module
        assert "process_batch" in found[0].message
    # The worker module hosts the in-process ANCServer (its own writer
    # thread) and may drive the engine.
    assert not findings_for(
        WRITER_POSITIVE, "repro.shard.worker", "writer-discipline"
    )
    # Read-only scatter-gather queries stay fine anywhere in the tier.
    read_only = """
        def peek(host, level):
            return host.engine.clusters(level)
    """
    assert not findings_for(read_only, "repro.shard.router", "writer-discipline")


def test_mutator_registry_derived_from_sources():
    methods, functions = mutator_registry()
    assert {"process", "process_batch", "refresh", "update_edge_weight"} <= methods
    assert "clusters" not in methods and "close" not in methods
    assert "insert_edge_into_index" in functions


# ----------------------------------------------------------------------
# no-wall-clock-in-engine
# ----------------------------------------------------------------------

def test_wall_clock_positive():
    src = """
        import time
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now()
    """
    found = findings_for(src, "repro.core.decay", "no-wall-clock-in-engine")
    assert len(found) == 2


def test_wall_clock_matches_aliased_imports():
    src = """
        from time import monotonic as mono

        def stamp():
            return mono()
    """
    assert findings_for(src, "repro.index.pyramid", "no-wall-clock-in-engine")


def test_wall_clock_allowed_outside_engine():
    src = """
        import time

        def stamp():
            return time.time()
    """
    for module in ("repro.service.metrics", "repro.bench.harness", "repro.cli"):
        assert not findings_for(src, module, "no-wall-clock-in-engine")


def test_wall_clock_allows_tz_aware_datetime():
    src = """
        from datetime import datetime, timezone

        def stamp(tz):
            return datetime.now(timezone.utc)
    """
    # Still engine scope, but not the argless naive form the rule names.
    assert not findings_for(src, "repro.core.decay", "no-wall-clock-in-engine")


def test_wall_clock_allows_the_obs_facade():
    """Instrumented engine code imports its clock from repro.obs.trace
    (pure measurement, not state) — the allowlisted facade."""
    for import_line in (
        "from ..obs.trace import perf_counter",
        "from repro.obs.trace import perf_counter",
    ):
        src = f"""
            {import_line}

            def measure():
                return perf_counter()
        """
        assert not findings_for(
            src, "repro.index.clustering", "no-wall-clock-in-engine"
        )


def test_wall_clock_suffix_catches_laundered_clocks():
    """Re-exporting a clock through a non-facade module does not wash
    it: the terminal-suffix match still flags the call."""
    src = """
        from ..service.helpers import perf_counter

        def measure():
            return perf_counter()
    """
    found = findings_for(src, "repro.index.pyramid", "no-wall-clock-in-engine")
    assert found and "repro.obs" in found[0].message


def test_wall_clock_raw_time_still_flagged_next_to_facade():
    src = """
        import time

        from ..obs.trace import perf_counter

        def measure():
            return perf_counter(), time.time()
    """
    found = findings_for(src, "repro.core.metric", "no-wall-clock-in-engine")
    assert len(found) == 1
    assert "time.time" in found[0].message


# ----------------------------------------------------------------------
# no-blocking-in-async
# ----------------------------------------------------------------------

def test_async_blocking_positive():
    src = """
        import time

        async def handler(lock):
            time.sleep(0.1)
            fh = open("state.json")
            lock.acquire()
    """
    found = findings_for(src, "repro.service.server", "no-blocking-in-async")
    assert len(found) == 3


def test_async_blocking_negative():
    src = """
        import asyncio

        async def handler(lock):
            await asyncio.sleep(0.1)
            async with lock:
                pass
            await lock.acquire()

            def blocking_closure():  # handed to the writer executor
                return open("state.json").read()

            return blocking_closure
    """
    assert not findings_for(src, "repro.service.server", "no-blocking-in-async")


def test_async_blocking_ignores_sync_and_nonservice_code():
    src = """
        import time

        def sync_helper():
            time.sleep(0.1)
    """
    assert not findings_for(src, "repro.service.server", "no-blocking-in-async")
    src_async = """
        import time

        async def run():
            time.sleep(0.1)
    """
    assert not findings_for(src_async, "repro.bench.harness", "no-blocking-in-async")


# ----------------------------------------------------------------------
# snapshot-immutability
# ----------------------------------------------------------------------

def test_snapshot_immutability_positive():
    src = """
        def tamper(state):
            state.seq = 99
            state.stats["queries"] = 0
            state.clusters_by_level[5].append([1, 2])
    """
    found = findings_for(src, "repro.service.server", "snapshot-immutability")
    assert len(found) == 3


def test_snapshot_immutability_self_outside_init():
    src = """
        class PublishedState:
            def __init__(self, seq):
                self.seq = seq

            def bump(self):
                self.seq += 1
    """
    found = findings_for(src, "repro.service.engine_host", "snapshot-immutability")
    assert len(found) == 1
    assert "outside __init__" in found[0].message


def test_snapshot_immutability_negative():
    src = """
        class Other:
            def __init__(self):
                self.seq = 0
                self.stats = {}

            def bump(self):
                self.seq += 1
                self.stats["x"] = 1
    """
    assert not findings_for(src, "repro.service.metrics", "snapshot-immutability")


def test_published_slots_derived():
    assert "clusters_by_level" in published_slots()
    assert "seq" in published_slots()


# ----------------------------------------------------------------------
# float-equality
# ----------------------------------------------------------------------

def test_float_equality_positive():
    src = """
        def check(g):
            return g == 1.0
    """
    assert findings_for(src, "repro.core.decay", "float-equality")


def test_float_equality_negative():
    src = """
        import math

        def check(g, n):
            if n == 3:
                return True
            return math.isclose(g, 1.0)
    """
    assert not findings_for(src, "repro.core.decay", "float-equality")
    # Same comparison outside the numeric-core scope is not flagged.
    src_eq = """
        def check(g):
            return g == 1.0
    """
    assert not findings_for(src_eq, "repro.core.metric", "float-equality")


# ----------------------------------------------------------------------
# mutable-default-arg
# ----------------------------------------------------------------------

def test_mutable_default_positive():
    src = """
        def f(xs=[], *, cache={}):
            return xs, cache
    """
    found = findings_for(src, "anything", "mutable-default-arg")
    assert len(found) == 2


def test_mutable_default_negative():
    src = """
        def f(xs=None, n=3, name="x", pair=(1, 2)):
            xs = [] if xs is None else xs
            return xs
    """
    assert not findings_for(src, "anything", "mutable-default-arg")


# ----------------------------------------------------------------------
# dict-mutation-during-iteration
# ----------------------------------------------------------------------

def test_dict_mutation_positive():
    src = """
        def prune(d, threshold):
            for k in d:
                if d[k] < threshold:
                    del d[k]
            for k, v in d.items():
                d.setdefault(k + 1, v)
    """
    found = findings_for(src, "anything", "dict-mutation-during-iteration")
    assert len(found) == 2


def test_dict_mutation_negative():
    src = """
        def rescale(self, factor):
            for key in self._weights:
                self._weights[key] *= factor

        def prune(d, threshold):
            for k in list(d):
                if d[k] < threshold:
                    del d[k]
    """
    assert not findings_for(src, "anything", "dict-mutation-during-iteration")


# ----------------------------------------------------------------------
# export-consistency
# ----------------------------------------------------------------------

def test_exports_missing_all():
    src = """
        def api():
            return 1
    """
    found = findings_for(src, "repro.core.widget", "export-consistency")
    assert len(found) == 1
    assert "no __all__" in found[0].message


def test_exports_unknown_and_unlisted_names():
    src = """
        __all__ = ["api", "ghost"]

        def api():
            return 1

        def stray():
            return 2
    """
    found = findings_for(src, "repro.core.widget", "export-consistency")
    messages = " | ".join(f.message for f in found)
    assert "ghost" in messages and "stray" in messages
    assert len(found) == 2


def test_exports_consistent_module_clean():
    src = """
        __all__ = ["api", "Widget"]

        def api():
            return 1

        def _helper():
            return 2

        class Widget:
            pass
    """
    assert not findings_for(src, "repro.core.widget", "export-consistency")
    # Modules outside the repro package are out of scope.
    bare = "def api():\n    return 1\n"
    assert not findings_for(bare, "some_script", "export-consistency")


# ----------------------------------------------------------------------
# service-exception-discipline
# ----------------------------------------------------------------------

SWALLOWED_POSITIVE = """
    def read_frame(sock):
        try:
            return sock.recv(4096)
        except OSError:
            return b""
"""


def test_service_exception_swallow_positive():
    found = findings_for(
        SWALLOWED_POSITIVE, "repro.service.client", "service-exception-discipline"
    )
    assert len(found) == 1
    assert "typed" in found[0].message


def test_service_exception_disciplined_clean():
    reraise = """
        def read_frame(sock):
            try:
                return sock.recv(4096)
            except OSError:
                raise ServiceConnectError("peer gone")
    """
    assert not findings_for(
        reraise, "repro.service.client", "service-exception-discipline"
    )
    typed_catch = """
        def poll(client):
            try:
                return client.status()
            except ServiceTimeout:
                return None
    """
    assert not findings_for(
        typed_catch, "repro.service.client", "service-exception-discipline"
    )
    flow_control = """
        async def pump(queue):
            try:
                await queue.join()
            except CancelledError:
                return
    """
    assert not findings_for(
        flow_control, "repro.service.server", "service-exception-discipline"
    )


def test_service_exception_out_of_scope_modules_clean():
    # The discipline only binds repro.service / repro.faults, not the engine.
    assert not findings_for(
        SWALLOWED_POSITIVE, "repro.core.anc", "service-exception-discipline"
    )


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

def test_line_pragma_suppresses_and_counts():
    src = """
        __all__ = ["check"]

        def check(g):
            return g == 1.0  # anclint: disable=float-equality — exact guard
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert not result.findings
    assert result.suppressed == {"float-equality": 1}


def test_file_pragma_suppresses_whole_file():
    src = """
        # anclint: disable=float-equality — legacy numeric fixture
        __all__ = ["check", "check2"]

        def check(g):
            return g == 1.0

        def check2(g):
            return g != 2.0
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert not result.findings
    assert result.suppressed == {"float-equality": 2}


def test_pragma_does_not_cover_other_rules_or_lines():
    src = """
        __all__ = ["check"]

        def check(g):
            if g == 1.0:  # anclint: disable=float-equality — guard
                return g
            return g == 2.0
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert [f.rule for f in result.findings] == ["float-equality"]
    assert result.findings[0].line == 7
    assert result.suppressed == {"float-equality": 1}


def test_pragma_without_reason_is_itself_a_finding():
    src = """
        __all__ = ["check"]

        def check(g):
            return g == 1.0  # anclint: disable=float-equality
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert [f.rule for f in result.findings] == [BAD_PRAGMA]
    assert result.suppressed == {"float-equality": 1}


def test_pragma_inside_string_is_not_a_pragma():
    src = '''
        __all__ = ["check"]

        TEXT = "# anclint: disable=float-equality — not a comment"

        def check(g):
            return g == 1.0
    '''
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert [f.rule for f in result.findings] == ["float-equality"]


def test_parse_pragmas_levels():
    supp = parse_pragmas(
        "# anclint: disable=rule-a — file wide\n"
        "x = 1  # anclint: disable=rule-b,rule-c - spot fix\n"
    )
    assert supp.covers("rule-a", 40)
    assert supp.covers("rule-b", 2) and supp.covers("rule-c", 2)
    assert not supp.covers("rule-b", 3)


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------

def test_syntax_error_becomes_parse_error_finding():
    result = lint_source("def broken(:\n", module="repro.core.x")
    assert [f.rule for f in result.findings] == [PARSE_ERROR]


def test_module_name_inference():
    assert module_name_for(Path("src/repro/core/decay.py")) == "repro.core.decay"
    assert module_name_for(Path("src/repro/service/__init__.py")) == "repro.service"
    assert module_name_for(Path("benchmarks/bench_analysis.py")) == "bench_analysis"


def test_findings_sorted_deterministically(tmp_path):
    bad = tmp_path / "fix.py"
    bad.write_text(
        "def b(xs=[]):\n    return xs\n\n\ndef a(ys={}):\n    return ys\n"
    )
    result = lint_paths([tmp_path])
    lines = [f.line for f in result.findings]
    assert lines == sorted(lines)


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------

def test_cli_lint_clean_repo_exits_zero():
    out = io.StringIO()
    assert main(["lint", str(SRC)], out) == 0
    assert "0 findings" in out.getvalue()
    assert "suppressed by pragma" in out.getvalue()


def test_cli_lint_true_positive_exits_nonzero(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = io.StringIO()
    assert main(["lint", str(bad)], out) == 1
    assert "mutable-default-arg" in out.getvalue()


def test_cli_lint_json_format(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = io.StringIO()
    assert main(["lint", "--format", "json", str(bad)], out) == 1
    payload = json.loads(out.getvalue())
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "mutable-default-arg"


def test_cli_lint_select_and_list_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = io.StringIO()
    # Selecting an unrelated rule ignores the mutable default.
    assert main(["lint", "--select", "float-equality", str(bad)], out) == 0
    out = io.StringIO()
    assert main(["lint", "--list-rules"], out) == 0
    listing = out.getvalue()
    for name in RULE_NAMES:
        assert name in listing


# ----------------------------------------------------------------------
# The other two gates, when their tools exist in the environment
# ----------------------------------------------------------------------

@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():  # pragma: no cover - exercised in CI
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():  # pragma: no cover - exercised in CI
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
