"""Tests for the repro.analysis invariant linter.

One true-positive and one true-negative fixture per rule, the pragma
machinery, the CLI gate, and — the point of the whole exercise — the
check that ``src/repro`` itself lints clean.
"""

import io
import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    LintCache,
    all_rules,
    all_whole_program_rules,
    apply_baseline,
    build_project,
    lint_paths,
    lint_source,
    load_baseline,
    parse_pragmas,
    rules_digest,
    save_baseline,
)
from repro.analysis.engine import BAD_PRAGMA, PARSE_ERROR, module_name_for
from repro.analysis.rules.snapshot_immutability import published_slots
from repro.analysis.rules.writer_discipline import mutator_registry
from repro.cli import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def findings_for(source, module, rule=None):
    result = lint_source(textwrap.dedent(source), module=module)
    if rule is None:
        return result.findings
    return [f for f in result.findings if f.rule == rule]


RULE_NAMES = {
    "backend-parity-discipline",
    "writer-discipline",
    "no-wall-clock-in-engine",
    "no-blocking-in-async",
    "snapshot-immutability",
    "float-equality",
    "mutable-default-arg",
    "dict-mutation-during-iteration",
    "export-consistency",
    "service-exception-discipline",
}


def test_all_rules_registered():
    assert {r.name for r in all_rules()} == RULE_NAMES


# ----------------------------------------------------------------------
# The acceptance gate: the repository's own source lints clean.
# ----------------------------------------------------------------------

def test_src_repro_lints_clean():
    result = lint_paths([SRC])
    assert result.findings == [], "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings
    )
    assert result.files > 50
    # The one sanctioned exemption (core/decay.py's exact no-op guard)
    # is counted, not silently dropped.
    assert result.suppressed.get("float-equality") == 1


# ----------------------------------------------------------------------
# writer-discipline
# ----------------------------------------------------------------------

WRITER_POSITIVE = """
    def sneaky(host, batch):
        host.engine.process_batch(batch)
"""


def test_writer_discipline_positive():
    found = findings_for(
        WRITER_POSITIVE, "repro.service.ingest", "writer-discipline"
    )
    assert len(found) == 1
    assert "process_batch" in found[0].message


def test_writer_discipline_function_mutator_positive():
    src = """
        from ..index.dynamic import insert_edge_into_index

        def grow(index, graph, metric, u, v):
            insert_edge_into_index(index, graph, metric, u, v)
    """
    found = findings_for(src, "repro.service.server", "writer-discipline")
    assert len(found) == 1
    assert "insert_edge_into_index" in found[0].message


def test_writer_discipline_allows_writer_and_nonservice_code():
    # The writer path itself may mutate ...
    assert not findings_for(
        WRITER_POSITIVE, "repro.service.engine_host", "writer-discipline"
    )
    assert not findings_for(
        WRITER_POSITIVE, "repro.service.snapshots", "writer-discipline"
    )
    # ... and so may code that owns its engine outright.
    assert not findings_for(WRITER_POSITIVE, "repro.bench.harness", "writer-discipline")
    # Read-only queries in service code are always fine.
    read_only = """
        def peek(host, level):
            return host.engine.clusters(level)
    """
    assert not findings_for(read_only, "repro.service.server", "writer-discipline")


def test_writer_discipline_covers_shard_modules():
    # The shard router/merge/admin tier is a pure reader: mutating an
    # engine there breaks the per-worker single-writer contract.
    for module in ("repro.shard.router", "repro.shard.merge", "repro.shard.admin"):
        found = findings_for(WRITER_POSITIVE, module, "writer-discipline")
        assert len(found) == 1, module
        assert "process_batch" in found[0].message
    # The worker module hosts the in-process ANCServer (its own writer
    # thread) and may drive the engine.
    assert not findings_for(
        WRITER_POSITIVE, "repro.shard.worker", "writer-discipline"
    )
    # Read-only scatter-gather queries stay fine anywhere in the tier.
    read_only = """
        def peek(host, level):
            return host.engine.clusters(level)
    """
    assert not findings_for(read_only, "repro.shard.router", "writer-discipline")


def test_mutator_registry_derived_from_sources():
    methods, functions = mutator_registry()
    assert {"process", "process_batch", "refresh", "update_edge_weight"} <= methods
    assert "clusters" not in methods and "close" not in methods
    assert "insert_edge_into_index" in functions


# ----------------------------------------------------------------------
# no-wall-clock-in-engine
# ----------------------------------------------------------------------

def test_wall_clock_positive():
    src = """
        import time
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now()
    """
    found = findings_for(src, "repro.core.decay", "no-wall-clock-in-engine")
    assert len(found) == 2


def test_wall_clock_matches_aliased_imports():
    src = """
        from time import monotonic as mono

        def stamp():
            return mono()
    """
    assert findings_for(src, "repro.index.pyramid", "no-wall-clock-in-engine")


def test_wall_clock_allowed_outside_engine():
    src = """
        import time

        def stamp():
            return time.time()
    """
    for module in ("repro.service.metrics", "repro.bench.harness", "repro.cli"):
        assert not findings_for(src, module, "no-wall-clock-in-engine")


def test_wall_clock_allows_tz_aware_datetime():
    src = """
        from datetime import datetime, timezone

        def stamp(tz):
            return datetime.now(timezone.utc)
    """
    # Still engine scope, but not the argless naive form the rule names.
    assert not findings_for(src, "repro.core.decay", "no-wall-clock-in-engine")


def test_wall_clock_allows_the_obs_facade():
    """Instrumented engine code imports its clock from repro.obs.trace
    (pure measurement, not state) — the allowlisted facade."""
    for import_line in (
        "from ..obs.trace import perf_counter",
        "from repro.obs.trace import perf_counter",
    ):
        src = f"""
            {import_line}

            def measure():
                return perf_counter()
        """
        assert not findings_for(
            src, "repro.index.clustering", "no-wall-clock-in-engine"
        )


def test_wall_clock_suffix_catches_laundered_clocks():
    """Re-exporting a clock through a non-facade module does not wash
    it: the terminal-suffix match still flags the call."""
    src = """
        from ..service.helpers import perf_counter

        def measure():
            return perf_counter()
    """
    found = findings_for(src, "repro.index.pyramid", "no-wall-clock-in-engine")
    assert found and "repro.obs" in found[0].message


def test_wall_clock_raw_time_still_flagged_next_to_facade():
    src = """
        import time

        from ..obs.trace import perf_counter

        def measure():
            return perf_counter(), time.time()
    """
    found = findings_for(src, "repro.core.metric", "no-wall-clock-in-engine")
    assert len(found) == 1
    assert "time.time" in found[0].message


# ----------------------------------------------------------------------
# no-blocking-in-async
# ----------------------------------------------------------------------

def test_async_blocking_positive():
    src = """
        import time

        async def handler(lock):
            time.sleep(0.1)
            fh = open("state.json")
            lock.acquire()
    """
    found = findings_for(src, "repro.service.server", "no-blocking-in-async")
    assert len(found) == 3


def test_async_blocking_negative():
    src = """
        import asyncio

        async def handler(lock):
            await asyncio.sleep(0.1)
            async with lock:
                pass
            await lock.acquire()

            def blocking_closure():  # handed to the writer executor
                return open("state.json").read()

            return blocking_closure
    """
    assert not findings_for(src, "repro.service.server", "no-blocking-in-async")


def test_async_blocking_ignores_sync_and_nonservice_code():
    src = """
        import time

        def sync_helper():
            time.sleep(0.1)
    """
    assert not findings_for(src, "repro.service.server", "no-blocking-in-async")
    src_async = """
        import time

        async def run():
            time.sleep(0.1)
    """
    assert not findings_for(src_async, "repro.bench.harness", "no-blocking-in-async")


# ----------------------------------------------------------------------
# snapshot-immutability
# ----------------------------------------------------------------------

def test_snapshot_immutability_positive():
    src = """
        def tamper(state):
            state.seq = 99
            state.stats["queries"] = 0
            state.clusters_by_level[5].append([1, 2])
    """
    found = findings_for(src, "repro.service.server", "snapshot-immutability")
    assert len(found) == 3


def test_snapshot_immutability_self_outside_init():
    src = """
        class PublishedState:
            def __init__(self, seq):
                self.seq = seq

            def bump(self):
                self.seq += 1
    """
    found = findings_for(src, "repro.service.engine_host", "snapshot-immutability")
    assert len(found) == 1
    assert "outside __init__" in found[0].message


def test_snapshot_immutability_negative():
    src = """
        class Other:
            def __init__(self):
                self.seq = 0
                self.stats = {}

            def bump(self):
                self.seq += 1
                self.stats["x"] = 1
    """
    assert not findings_for(src, "repro.service.metrics", "snapshot-immutability")


def test_published_slots_derived():
    assert "clusters_by_level" in published_slots()
    assert "seq" in published_slots()


# ----------------------------------------------------------------------
# float-equality
# ----------------------------------------------------------------------

def test_float_equality_positive():
    src = """
        def check(g):
            return g == 1.0
    """
    assert findings_for(src, "repro.core.decay", "float-equality")


def test_float_equality_negative():
    src = """
        import math

        def check(g, n):
            if n == 3:
                return True
            return math.isclose(g, 1.0)
    """
    assert not findings_for(src, "repro.core.decay", "float-equality")
    # Same comparison outside the numeric-core scope is not flagged.
    src_eq = """
        def check(g):
            return g == 1.0
    """
    assert not findings_for(src_eq, "repro.core.metric", "float-equality")


# ----------------------------------------------------------------------
# mutable-default-arg
# ----------------------------------------------------------------------

def test_mutable_default_positive():
    src = """
        def f(xs=[], *, cache={}):
            return xs, cache
    """
    found = findings_for(src, "anything", "mutable-default-arg")
    assert len(found) == 2


def test_mutable_default_negative():
    src = """
        def f(xs=None, n=3, name="x", pair=(1, 2)):
            xs = [] if xs is None else xs
            return xs
    """
    assert not findings_for(src, "anything", "mutable-default-arg")


# ----------------------------------------------------------------------
# dict-mutation-during-iteration
# ----------------------------------------------------------------------

def test_dict_mutation_positive():
    src = """
        def prune(d, threshold):
            for k in d:
                if d[k] < threshold:
                    del d[k]
            for k, v in d.items():
                d.setdefault(k + 1, v)
    """
    found = findings_for(src, "anything", "dict-mutation-during-iteration")
    assert len(found) == 2


def test_dict_mutation_negative():
    src = """
        def rescale(self, factor):
            for key in self._weights:
                self._weights[key] *= factor

        def prune(d, threshold):
            for k in list(d):
                if d[k] < threshold:
                    del d[k]
    """
    assert not findings_for(src, "anything", "dict-mutation-during-iteration")


# ----------------------------------------------------------------------
# export-consistency
# ----------------------------------------------------------------------

def test_exports_missing_all():
    src = """
        def api():
            return 1
    """
    found = findings_for(src, "repro.core.widget", "export-consistency")
    assert len(found) == 1
    assert "no __all__" in found[0].message


def test_exports_unknown_and_unlisted_names():
    src = """
        __all__ = ["api", "ghost"]

        def api():
            return 1

        def stray():
            return 2
    """
    found = findings_for(src, "repro.core.widget", "export-consistency")
    messages = " | ".join(f.message for f in found)
    assert "ghost" in messages and "stray" in messages
    assert len(found) == 2


def test_exports_consistent_module_clean():
    src = """
        __all__ = ["api", "Widget"]

        def api():
            return 1

        def _helper():
            return 2

        class Widget:
            pass
    """
    assert not findings_for(src, "repro.core.widget", "export-consistency")
    # Modules outside the repro package are out of scope.
    bare = "def api():\n    return 1\n"
    assert not findings_for(bare, "some_script", "export-consistency")


# ----------------------------------------------------------------------
# service-exception-discipline
# ----------------------------------------------------------------------

SWALLOWED_POSITIVE = """
    def read_frame(sock):
        try:
            return sock.recv(4096)
        except OSError:
            return b""
"""


def test_service_exception_swallow_positive():
    found = findings_for(
        SWALLOWED_POSITIVE, "repro.service.client", "service-exception-discipline"
    )
    assert len(found) == 1
    assert "typed" in found[0].message


def test_service_exception_disciplined_clean():
    reraise = """
        def read_frame(sock):
            try:
                return sock.recv(4096)
            except OSError:
                raise ServiceConnectError("peer gone")
    """
    assert not findings_for(
        reraise, "repro.service.client", "service-exception-discipline"
    )
    typed_catch = """
        def poll(client):
            try:
                return client.status()
            except ServiceTimeout:
                return None
    """
    assert not findings_for(
        typed_catch, "repro.service.client", "service-exception-discipline"
    )
    flow_control = """
        async def pump(queue):
            try:
                await queue.join()
            except CancelledError:
                return
    """
    assert not findings_for(
        flow_control, "repro.service.server", "service-exception-discipline"
    )


def test_service_exception_out_of_scope_modules_clean():
    # The discipline only binds repro.service / repro.faults, not the engine.
    assert not findings_for(
        SWALLOWED_POSITIVE, "repro.core.anc", "service-exception-discipline"
    )


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

def test_line_pragma_suppresses_and_counts():
    src = """
        __all__ = ["check"]

        def check(g):
            return g == 1.0  # anclint: disable=float-equality — exact guard
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert not result.findings
    assert result.suppressed == {"float-equality": 1}


def test_file_pragma_suppresses_whole_file():
    src = """
        # anclint: disable=float-equality — legacy numeric fixture
        __all__ = ["check", "check2"]

        def check(g):
            return g == 1.0

        def check2(g):
            return g != 2.0
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert not result.findings
    assert result.suppressed == {"float-equality": 2}


def test_pragma_does_not_cover_other_rules_or_lines():
    src = """
        __all__ = ["check"]

        def check(g):
            if g == 1.0:  # anclint: disable=float-equality — guard
                return g
            return g == 2.0
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert [f.rule for f in result.findings] == ["float-equality"]
    assert result.findings[0].line == 7
    assert result.suppressed == {"float-equality": 1}


def test_pragma_without_reason_is_itself_a_finding():
    src = """
        __all__ = ["check"]

        def check(g):
            return g == 1.0  # anclint: disable=float-equality
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert [f.rule for f in result.findings] == [BAD_PRAGMA]
    assert result.suppressed == {"float-equality": 1}


def test_pragma_inside_string_is_not_a_pragma():
    src = '''
        __all__ = ["check"]

        TEXT = "# anclint: disable=float-equality — not a comment"

        def check(g):
            return g == 1.0
    '''
    result = lint_source(textwrap.dedent(src), module="repro.core.decay")
    assert [f.rule for f in result.findings] == ["float-equality"]


def test_parse_pragmas_levels():
    supp = parse_pragmas(
        "# anclint: disable=rule-a — file wide\n"
        "x = 1  # anclint: disable=rule-b,rule-c - spot fix\n"
    )
    assert supp.covers("rule-a", 40)
    assert supp.covers("rule-b", 2) and supp.covers("rule-c", 2)
    assert not supp.covers("rule-b", 3)


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------

def test_syntax_error_becomes_parse_error_finding():
    result = lint_source("def broken(:\n", module="repro.core.x")
    assert [f.rule for f in result.findings] == [PARSE_ERROR]


def test_module_name_inference():
    assert module_name_for(Path("src/repro/core/decay.py")) == "repro.core.decay"
    assert module_name_for(Path("src/repro/service/__init__.py")) == "repro.service"
    assert module_name_for(Path("benchmarks/bench_analysis.py")) == "bench_analysis"


def test_findings_sorted_deterministically(tmp_path):
    bad = tmp_path / "fix.py"
    bad.write_text(
        "def b(xs=[]):\n    return xs\n\n\ndef a(ys={}):\n    return ys\n"
    )
    result = lint_paths([tmp_path])
    lines = [f.line for f in result.findings]
    assert lines == sorted(lines)


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------

def test_cli_lint_clean_repo_exits_zero():
    out = io.StringIO()
    assert main(["lint", str(SRC)], out) == 0
    assert "0 findings" in out.getvalue()
    assert "suppressed by pragma" in out.getvalue()


def test_cli_lint_true_positive_exits_nonzero(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = io.StringIO()
    assert main(["lint", str(bad)], out) == 1
    assert "mutable-default-arg" in out.getvalue()


def test_cli_lint_json_format(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = io.StringIO()
    assert main(["lint", "--format", "json", str(bad)], out) == 1
    payload = json.loads(out.getvalue())
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "mutable-default-arg"


def test_cli_lint_select_and_list_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = io.StringIO()
    # Selecting an unrelated rule ignores the mutable default.
    assert main(["lint", "--select", "float-equality", str(bad)], out) == 0
    out = io.StringIO()
    assert main(["lint", "--list-rules"], out) == 0
    listing = out.getvalue()
    for name in RULE_NAMES:
        assert name in listing


# ----------------------------------------------------------------------
# Whole-program analysis: ProjectModel, the three cross-file rules,
# baselines, the incremental cache, SARIF.
# ----------------------------------------------------------------------

WP_RULE_NAMES = {
    "protocol-conformance",
    "async-task-race",
    "fault-hook-coverage",
    "op-span-coverage",
}


def test_whole_program_rules_registered():
    assert {r.name for r in all_whole_program_rules()} == WP_RULE_NAMES
    # The per-file catalogue is untouched by the whole-program registry.
    assert {r.name for r in all_rules()} == RULE_NAMES


def write_fixture_tree(
    root,
    *,
    drop_router_op=None,
    raise_fenced=True,
    bad_client_op=False,
    bad_response_key=False,
    bad_error_compare=False,
):
    """A miniature client/server/router/faults package for the rules."""
    pkg = root / "pkg"
    (pkg / "service").mkdir(parents=True)
    (pkg / "shard").mkdir()
    (pkg / "faults").mkdir()
    (pkg / "service" / "errors.py").write_text(
        textwrap.dedent(
            """
            class ServiceFault(Exception):
                code = "INTERNAL"

            class BadRequest(ServiceFault):
                code = "BAD_REQUEST"

            class Fenced(ServiceFault):
                code = "FENCED"
            """
        )
    )
    fenced_raise = (
        '        raise Fenced("stale epoch")\n' if raise_fenced else "        pass\n"
    )
    (pkg / "service" / "server.py").write_text(
        textwrap.dedent(
            """
            from .errors import BadRequest, Fenced
            from ..faults.injectors import HOOKS

            class MiniServer:
                async def _op_ping(self, request):
                    return {"t": 1.0, "applied": 3}

                async def _op_fetch(self, request):
                    HOOKS.hit("server.request")
                    return {"cluster": [1, 2]}

                async def _op_watch(self, request):
                    if request.get("node") is None:
                        raise BadRequest("missing node")
                    return {"cluster": []}

                def _check_epoch(self, epoch):
            """
        )
        + fenced_raise
        + '\n    _OPS = {"ping": _op_ping, "fetch": _op_fetch, "watch": _op_watch}\n'
    )
    router_ops = ['"ping": _op_ping', '"fetch": _op_fetch', '"watch": _op_watch']
    if drop_router_op is not None:
        router_ops = [o for o in router_ops if not o.startswith(f'"{drop_router_op}"')]
    (pkg / "shard" / "router.py").write_text(
        textwrap.dedent(
            """
            class MiniRouter:
                async def _op_ping(self, request):
                    return await self._scatter("ping", {"op": "ping"})

                async def _op_fetch(self, request):
                    return await self._forward(0, {"op": "fetch"})

                async def _op_watch(self, request):
                    return await self._forward(0, {"op": "watch"})

                async def _forward(self, shard, payload):
                    return {}

                async def _scatter(self, op, payload):
                    return {}

            """
        )
        + f"    _OPS = {{{', '.join(router_ops)}}}\n"
    )
    extra_client = ""
    if bad_client_op:
        extra_client += (
            "    def nope(self):\n"
            '        return self.request("nope")\n'
        )
    if bad_response_key:
        extra_client += (
            "    def ghost(self):\n"
            '        return self.request("ping")["ghost_key"]\n'
        )
    if bad_error_compare:
        extra_client += (
            "    def weird(self, err):\n"
            '        return err.error_type == "NO_SUCH_CODE"\n'
        )
    (pkg / "service" / "client.py").write_text(
        textwrap.dedent(
            """
            class Client:
                def request(self, op, **fields):
                    return {"ok": True}

                def ping(self):
                    return self.request("ping")["applied"]

                def fetch(self):
                    return self.request("fetch")["cluster"]

                def watch(self):
                    return self.request("watch")["cluster"]

                def is_fenced(self, error_type):
                    return error_type == "FENCED"

            """
        )
        + extra_client
    )
    (pkg / "faults" / "injectors.py").write_text(
        textwrap.dedent(
            """
            CATALOG = {
                "server.request": {"error": "fail the request"},
            }

            class _Hooks:
                def hit(self, site, **labels):
                    return None

            HOOKS = _Hooks()
            """
        )
    )
    return pkg


def wp_lint(root, select=None):
    return lint_paths(
        [root],
        select=sorted(WP_RULE_NAMES) if select is None else select,
        package="pkg",
    )


def test_project_model_import_and_call_graph(tmp_path):
    write_fixture_tree(tmp_path)
    model = build_project([tmp_path], package="pkg")
    assert "pkg.service.server" in model.modules
    assert "pkg.service.errors" in model.import_graph["pkg.service.server"]
    assert "pkg.faults.injectors" in model.import_graph["pkg.service.server"]
    # self-method call edges resolve within the class.
    edges = model.call_edges["pkg.service.client:Client.ping"]
    assert "pkg.service.client:Client.request" in edges
    # Reachability covers the op handlers (dispatch-table roots).
    reachable = model.reachable(model.default_roots())
    assert "pkg.service.server:MiniServer._op_fetch" in reachable


def test_project_model_contexts_async_barrier(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(
        textwrap.dedent(
            """
            import threading

            class Host:
                def start(self):
                    threading.Thread(target=self._work).start()

                def _work(self):
                    self._helper()

                def _helper(self):
                    pass

                async def pump(self):
                    self._helper()
            """
        )
    )
    model = build_project([tmp_path], package="pkg")
    ctx = model.contexts()
    assert ctx["pkg.service.host:Host._work"] == {"thread"}
    # _helper is called from both the thread target and the coroutine.
    assert ctx["pkg.service.host:Host._helper"] == {"thread", "loop"}
    # The async def itself is loop-only: thread taint never crosses in.
    assert ctx["pkg.service.host:Host.pump"] == {"loop"}


def test_protocol_conformance_clean_fixture(tmp_path):
    write_fixture_tree(tmp_path)
    assert wp_lint(tmp_path).findings == []


def test_protocol_unhandled_op(tmp_path):
    write_fixture_tree(tmp_path, bad_client_op=True)
    findings = wp_lint(tmp_path).findings
    assert len(findings) == 1
    assert findings[0].rule == "protocol-conformance"
    assert "'nope'" in findings[0].message


def test_protocol_router_gap_and_dead_error(tmp_path):
    # The seeded regression from the acceptance criteria: drop one router
    # forward entry and one error-raise; exactly those two findings.
    write_fixture_tree(tmp_path, drop_router_op="watch", raise_fenced=False)
    findings = wp_lint(tmp_path).findings
    assert len(findings) == 2, [f.message for f in findings]
    by_message = sorted(f.message for f in findings)
    assert "router neither forwards nor handles" in by_message[0]
    assert "'watch'" in by_message[0]
    assert "never raised" in by_message[1]
    assert "Fenced" in by_message[1]


def test_protocol_unknown_error_code_compare(tmp_path):
    write_fixture_tree(tmp_path, bad_error_compare=True)
    findings = wp_lint(tmp_path).findings
    assert len(findings) == 1
    assert "NO_SUCH_CODE" in findings[0].message


def test_protocol_unset_response_key(tmp_path):
    write_fixture_tree(tmp_path, bad_response_key=True)
    findings = wp_lint(tmp_path).findings
    assert len(findings) == 1
    assert "ghost_key" in findings[0].message


def test_protocol_pragma_suppresses(tmp_path):
    write_fixture_tree(tmp_path, bad_client_op=True)
    client = tmp_path / "pkg" / "service" / "client.py"
    client.write_text(
        client.read_text().replace(
            'return self.request("nope")',
            'return self.request("nope")  '
            "# anclint: disable=protocol-conformance — wire op lands next PR",
        )
    )
    result = wp_lint(tmp_path)
    assert result.findings == []
    assert result.suppressed.get("protocol-conformance") == 1


def test_silent_when_project_has_no_protocol(tmp_path):
    (tmp_path / "plain.py").write_text("def f():\n    return 1\n")
    assert wp_lint(tmp_path).findings == []


RACE_FIXTURE = """
    import asyncio
    import threading

    class Host:
        def __init__(self):
            self.counter = 0
            self._lock = threading.Lock()

        def start(self):
            threading.Thread(target=self._work).start()

        def _work(self):
            self.counter += 1

        async def pump(self):
            self.counter += 1
"""


def test_race_multi_context_write(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(textwrap.dedent(RACE_FIXTURE))
    findings = wp_lint(tmp_path).findings
    assert len(findings) == 1
    assert findings[0].rule == "async-task-race"
    assert "Host.counter" in findings[0].message
    assert "loop" in findings[0].message and "thread" in findings[0].message


def test_race_lock_guard_is_clean(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    guarded = textwrap.dedent(RACE_FIXTURE).replace(
        "    def _work(self):\n        self.counter += 1",
        "    def _work(self):\n"
        "        with self._lock:\n"
        "            self.counter += 1",
    ).replace(
        "    async def pump(self):\n        self.counter += 1",
        "    async def pump(self):\n"
        "        with self._lock:\n"
        "            self.counter += 1",
    )
    assert guarded.count("with self._lock:") == 2
    (pkg / "host.py").write_text(guarded)
    assert wp_lint(tmp_path).findings == []


def test_race_out_of_scope_package_is_clean(tmp_path):
    # Same hazard, but outside service/shard/replica: not our problem.
    pkg = tmp_path / "pkg" / "workloads"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(textwrap.dedent(RACE_FIXTURE))
    assert wp_lint(tmp_path).findings == []


def test_race_await_under_sync_lock(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(
        textwrap.dedent(
            """
            import asyncio
            import threading

            class Host:
                def __init__(self):
                    self._lock = threading.Lock()

                async def flush(self):
                    with self._lock:
                        await asyncio.sleep(0)
            """
        )
    )
    findings = wp_lint(tmp_path).findings
    assert len(findings) == 1
    assert "holding sync lock self._lock" in findings[0].message


def test_race_async_lock_await_is_clean(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(
        textwrap.dedent(
            """
            import asyncio

            class Host:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def flush(self):
                    with self._lock:
                        await asyncio.sleep(0)
            """
        )
    )
    assert wp_lint(tmp_path).findings == []


def test_race_fire_and_forget_task(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(
        textwrap.dedent(
            """
            import asyncio

            class Host:
                async def start(self):
                    asyncio.create_task(self._poll())

                async def _poll(self):
                    pass
            """
        )
    )
    findings = wp_lint(tmp_path).findings
    assert len(findings) == 1
    assert "fire-and-forget" in findings[0].message


def test_race_retained_task_is_clean(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(
        textwrap.dedent(
            """
            import asyncio

            class Host:
                async def start(self):
                    self._task = asyncio.create_task(self._poll())

                async def _poll(self):
                    pass
            """
        )
    )
    assert wp_lint(tmp_path).findings == []


def test_race_pragma_suppresses(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "host.py").write_text(
        textwrap.dedent(
            """
            import asyncio

            class Host:
                async def start(self):
                    asyncio.create_task(self._poll())  # anclint: disable=async-task-race — poller lives for the process lifetime

                async def _poll(self):
                    pass
            """
        )
    )
    result = wp_lint(tmp_path)
    assert result.findings == []
    assert result.suppressed.get("async-task-race") == 1


def test_fault_hook_coverage_clean(tmp_path):
    write_fixture_tree(tmp_path)
    assert wp_lint(tmp_path, select=["fault-hook-coverage"]).findings == []


def test_fault_hook_catalog_without_hook(tmp_path):
    write_fixture_tree(tmp_path)
    injectors = tmp_path / "pkg" / "faults" / "injectors.py"
    injectors.write_text(
        injectors.read_text().replace(
            'CATALOG = {\n    "server.request": {"error": "fail the request"},\n}',
            'CATALOG = {\n    "server.request": {"error": "fail the request"},\n'
            '    "wal.append": {"torn": "cut the record"},\n}',
        )
    )
    findings = wp_lint(tmp_path, select=["fault-hook-coverage"]).findings
    assert len(findings) == 1
    assert "wal.append" in findings[0].message
    assert "no hooks.hit()" in findings[0].message


def test_fault_hook_without_catalog_entry(tmp_path):
    write_fixture_tree(tmp_path)
    server = tmp_path / "pkg" / "service" / "server.py"
    server.write_text(
        server.read_text().replace(
            'HOOKS.hit("server.request")',
            'HOOKS.hit("server.requets")',  # typo'd site name
        )
    )
    findings = wp_lint(tmp_path, select=["fault-hook-coverage"]).findings
    messages = "\n".join(f.message for f in findings)
    assert "server.requets" in messages and "not in the faults CATALOG" in messages
    # ... and the catalog entry the typo orphaned is reported too.
    assert "server.request" in messages.replace("server.requets", "")


def write_span_fixture(tmp_path, *, dispatcher_span=True, handler_span=False):
    """A server package that traces: handlers + an _OPS dispatcher."""
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    dispatch_body = (
        '        with self.tracer.wire_span(f"server.{op}", None):\n'
        "            return await handler(self, request)\n"
        if dispatcher_span
        else "        return await handler(self, request)\n"
    )
    fetch_body = (
        '        with self.tracer.span("engine.fetch"):\n'
        "            return {}\n"
        if handler_span
        else "        return {}\n"
    )
    (pkg / "server.py").write_text(
        "class SpanServer:\n"
        "    async def _op_ping(self, request):\n"
        '        with self.tracer.span("server.ping"):\n'
        '            return {"t": 1.0}\n'
        "\n"
        "    async def _op_fetch(self, request):\n"
        + fetch_body
        + "\n"
        "    async def _handle(self, op, request):\n"
        "        handler = self._OPS.get(op)\n"
        + dispatch_body
        + '\n    _OPS = {"ping": _op_ping, "fetch": _op_fetch}\n'
    )
    return pkg


def test_op_span_coverage_dispatcher_covers(tmp_path):
    # The _handle_request pattern: one span around the dispatch loop
    # covers every handler, even span-less ones.
    write_span_fixture(tmp_path, dispatcher_span=True, handler_span=False)
    assert wp_lint(tmp_path, select=["op-span-coverage"]).findings == []


def test_op_span_coverage_uncovered_handler(tmp_path):
    # No dispatcher span, and _op_fetch neither opens a span nor reaches
    # one through its calls — that handler alone is flagged.
    write_span_fixture(tmp_path, dispatcher_span=False, handler_span=False)
    findings = wp_lint(tmp_path, select=["op-span-coverage"]).findings
    assert len(findings) == 1, [f.message for f in findings]
    assert "'fetch'" in findings[0].message
    assert "SpanServer._op_fetch" in findings[0].message


def test_op_span_coverage_handler_span_counts(tmp_path):
    write_span_fixture(tmp_path, dispatcher_span=False, handler_span=True)
    assert wp_lint(tmp_path, select=["op-span-coverage"]).findings == []


def test_op_span_coverage_silent_without_tracing(tmp_path):
    # The plain fixture tree never opens a span anywhere: a project with
    # no tracing layer is not nagged about uncovered handlers.
    write_fixture_tree(tmp_path)
    assert wp_lint(tmp_path, select=["op-span-coverage"]).findings == []


def test_op_span_coverage_pragma_suppresses(tmp_path):
    write_span_fixture(tmp_path, dispatcher_span=False, handler_span=False)
    server = tmp_path / "pkg" / "service" / "server.py"
    server.write_text(
        server.read_text().replace(
            "async def _op_fetch(self, request):",
            "async def _op_fetch(self, request):  # anclint: disable=op-span-coverage — pure metadata read, not worth a span",
        )
    )
    result = wp_lint(tmp_path, select=["op-span-coverage"])
    assert result.findings == []
    assert result.suppressed.get("op-span-coverage") == 1


def test_baseline_roundtrip_and_stale(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    result = lint_paths([bad])
    assert len(result.findings) == 1
    base = tmp_path / "base.json"
    save_baseline(base, result)
    filtered, matched, stale = apply_baseline(result, load_baseline(base))
    assert filtered.findings == [] and filtered.ok
    assert matched == {"mutable-default-arg": 1} and stale == []
    # Fix the code: the baseline entry goes stale and that is a finding.
    bad.write_text("def f(xs=None):\n    return xs\n")
    filtered, matched, stale = apply_baseline(
        lint_paths([bad]), load_baseline(base)
    )
    assert len(stale) == 1
    assert [f.rule for f in filtered.findings] == ["stale-baseline"]
    assert not filtered.ok


def test_cli_baseline_gates_on_regressions(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    base = tmp_path / "base.json"
    out = io.StringIO()
    assert main(
        ["lint", str(bad), "--baseline", str(base), "--update-baseline"], out
    ) == 0
    # Baseline-suppressed findings exit 0 ...
    out = io.StringIO()
    assert main(["lint", str(bad), "--baseline", str(base)], out) == 0
    assert "1 finding suppressed" in out.getvalue()
    # ... a new finding still exits 1 ...
    bad.write_text("def f(xs=[]):\n    return xs\n\n\ndef g(ys={}):\n    return ys\n")
    out = io.StringIO()
    assert main(["lint", str(bad), "--baseline", str(base)], out) == 1
    assert "g()" in out.getvalue()
    # ... and a stale entry fails the run (the baseline must stay exact).
    bad.write_text("def h():\n    return 1\n")
    out = io.StringIO()
    assert main(["lint", str(bad), "--baseline", str(base)], out) == 1
    assert "stale-baseline" in out.getvalue()


def test_checked_in_baseline_is_exact():
    # CI runs against lint-baseline.json; the repo must match it exactly
    # (no unbaselined findings, no stale entries).
    result = lint_paths([SRC])
    filtered, _matched, stale = apply_baseline(
        result, load_baseline(REPO_ROOT / "lint-baseline.json")
    )
    assert filtered.findings == [] and stale == [], "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in filtered.findings
    )


def test_incremental_cache_hit_and_invalidation(tmp_path):
    write_fixture_tree(tmp_path, bad_client_op=True)
    cache_path = tmp_path / "cache.json"
    names = [r.name for r in all_rules()] + [r.name for r in all_whole_program_rules()]

    def run():
        cache = LintCache(cache_path, rules_digest(names))
        result = lint_paths(
            [tmp_path / "pkg"], select=sorted(WP_RULE_NAMES), package="pkg"
        )
        # Route through lint_paths with the cache for the real flow:
        cache_result = lint_paths(
            [tmp_path / "pkg"],
            select=sorted(WP_RULE_NAMES),
            package="pkg",
            cache=cache,
        )
        assert [f.to_dict() for f in cache_result.findings] == [
            f.to_dict() for f in result.findings
        ]
        return cache_result, cache

    first, cache1 = run()
    assert cache1.stats()[1] > 0  # cold: misses
    second, cache2 = run()
    assert cache2.stats() == (cache2.hits, 0) and cache2.hits > 0  # warm: all hits
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ]
    # Editing a file invalidates only it — and changes the verdict.
    client = tmp_path / "pkg" / "service" / "client.py"
    client.write_text(client.read_text().replace('self.request("nope")', '"fixed"'))
    cache = LintCache(cache_path, rules_digest(names))
    result = lint_paths(
        [tmp_path / "pkg"], select=sorted(WP_RULE_NAMES), package="pkg", cache=cache
    )
    assert result.findings == []
    assert cache.misses == 1  # only the edited file re-linted


def test_cache_rule_digest_invalidates(tmp_path):
    bad = tmp_path / "ok.py"
    bad.write_text("def f():\n    return 1\n")
    cache_path = tmp_path / "cache.json"
    cache = LintCache(cache_path, rules_digest(["a"]))
    lint_paths([bad], cache=cache)
    assert cache.misses == 1
    # Same digest: warm.
    cache = LintCache(cache_path, rules_digest(["a"]))
    lint_paths([bad], cache=cache)
    assert cache.hits == 1 and cache.misses == 0
    # New rule set: everything re-lints.
    cache = LintCache(cache_path, rules_digest(["a", "b"]))
    lint_paths([bad], cache=cache)
    assert cache.misses == 1


def test_sarif_output_well_formed(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = io.StringIO()
    assert main(["lint", "--format", "sarif", str(bad)], out) == 1
    doc = json.loads(out.getvalue())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-anc-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert RULE_NAMES | WP_RULE_NAMES <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "mutable-default-arg"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 1
    assert loc["region"]["startColumn"] >= 1


def test_cli_select_commas_compose_with_wp_rules(tmp_path):
    write_fixture_tree(tmp_path, bad_client_op=True)
    # Comma-joined single argument, mixing per-file and whole-program.
    out = io.StringIO()
    code = main(
        [
            "lint",
            str(tmp_path / "pkg"),
            "--select",
            "protocol-conformance,mutable-default-arg",
        ],
        out,
    )
    # The fixture package is not `repro`, so only the protocol finding
    # fires — proving the whole-program rule ran under --select.
    assert code == 1
    assert "protocol-conformance" in out.getvalue()
    out = io.StringIO()
    assert main(["lint", str(tmp_path / "pkg"), "--select", "float-equality"], out) == 0
    out = io.StringIO()
    assert main(["lint", str(tmp_path / "pkg"), "--select", "no-such-rule"], out) == 2


def test_cli_list_ops_inventory():
    out = io.StringIO()
    assert main(["lint", str(SRC), "--list-ops"], out) == 0
    table = out.getvalue()
    assert "| `ping` |" in table
    assert "ANCServer" in table and "ShardRouter" in table
    # The six ops this PR routed through the shard tier are covered.
    for op in ("zoom_in", "zoom_out", "watch", "unwatch", "changes", "snapshot"):
        assert f"| `{op}` |" in table


# ----------------------------------------------------------------------
# The other two gates, when their tools exist in the environment
# ----------------------------------------------------------------------

@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():  # pragma: no cover - exercised in CI
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():  # pragma: no cover - exercised in CI
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# backend-parity-discipline
# ----------------------------------------------------------------------

def test_backend_parity_flags_unmirrored_writer():
    """A new direct hot-state writer without an array override is flagged."""
    src = """
        class AnchoredEdgeValues:
            def smuggle(self, key, value):
                self._values[key] = value
    """
    found = findings_for(src, "repro.core.decay", "backend-parity-discipline")
    assert len(found) == 1
    assert "ArrayEdgeValues" in found[0].message
    assert "_values" in found[0].message


def test_backend_parity_flags_inplace_container_calls():
    """clear()/update() on a tracked container count as writes."""
    src = """
        class PyramidIndex:
            def wipe(self):
                self._weights.clear()
    """
    found = findings_for(src, "repro.index.pyramid", "backend-parity-discipline")
    assert len(found) == 1
    assert "ArrayPyramidIndex" in found[0].message


def test_backend_parity_overridden_writer_is_clean():
    """Writers the array backend overrides pass (derived override set)."""
    src = """
        class AnchoredEdgeValues:
            def set_anchored(self, u, v, value):
                self._values[(u, v)] = value
    """
    assert not findings_for(
        src, "repro.core.decay", "backend-parity-discipline"
    )


def test_backend_parity_dispatching_writer_is_clean():
    """Writes routed through an overridden mutator method are the
    sanctioned pattern — only *direct* container writes are flagged."""
    src = """
        class PyramidIndex:
            def insert(self, key, value):
                self._store_weight(key, value)
    """
    assert not findings_for(
        src, "repro.index.pyramid", "backend-parity-discipline"
    )


def test_backend_parity_ignores_untracked_modules():
    src = """
        class AnchoredEdgeValues:
            def smuggle(self, key, value):
                self._values[key] = value
    """
    assert not findings_for(
        src, "repro.core.reinforcement", "backend-parity-discipline"
    )


def test_backend_parity_pragma_escapes_with_reason():
    src = """
        class ActiveSimilarity:
            def tweak(self, v):  # anclint: disable=backend-parity-discipline — dict-only prototype knob
                self._strength[v] += 1.0
    """
    result = lint_source(textwrap.dedent(src), module="repro.core.similarity")
    assert not [
        f for f in result.findings if f.rule == "backend-parity-discipline"
    ]
    assert result.suppressed.get("backend-parity-discipline") == 1


def test_backend_parity_overrides_derived_from_sources():
    """The override registry reflects the real array backend modules."""
    from repro.analysis.rules.backend_parity import array_overrides

    overrides = array_overrides()
    assert "set_anchored" in overrides["ArrayEdgeValues"]
    assert "_rebuild_strengths" in overrides["ArrayActiveSimilarity"]
    assert "_store_weight" in overrides["ArrayPyramidIndex"]
