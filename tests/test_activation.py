"""Unit tests for the activation stream model (Section III)."""

import pytest

from repro.core.activation import Activation, ActivationStream, naive_activeness
from repro.graph.graph import Graph


class TestActivation:
    def test_canonical_edge_required(self):
        with pytest.raises(ValueError):
            Activation(2, 1, 0.0)

    def test_of_normalizes(self):
        a = Activation.of(5, 2, 1.5)
        assert (a.u, a.v) == (2, 5)
        assert a.edge == (2, 5)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Activation(0, 1, -1.0)

    def test_frozen(self):
        a = Activation(0, 1, 1.0)
        with pytest.raises(AttributeError):
            a.t = 2.0  # type: ignore[misc]  # anclint: disable=snapshot-immutability — asserting Activation is frozen, not a snapshot

    def test_ordering_is_deterministic(self):
        items = [Activation(1, 2, 5.0), Activation(0, 2, 9.0), Activation(0, 1, 7.0)]
        assert sorted(items)[0] == Activation(0, 1, 7.0)


class TestActivationStream:
    @pytest.fixture
    def graph(self):
        return Graph(4, [(0, 1), (1, 2), (2, 3)])

    def test_append_validates_edge_exists(self, graph):
        stream = ActivationStream(graph)
        with pytest.raises(ValueError):
            stream.append(Activation(0, 3, 1.0))

    def test_append_validates_time_order(self, graph):
        stream = ActivationStream(graph)
        stream.append(Activation(0, 1, 2.0))
        with pytest.raises(ValueError):
            stream.append(Activation(1, 2, 1.0))

    def test_equal_timestamps_allowed(self, graph):
        stream = ActivationStream(graph)
        stream.append(Activation(0, 1, 1.0))
        stream.append(Activation(1, 2, 1.0))
        assert len(stream) == 2

    def test_span(self, graph):
        stream = ActivationStream(graph)
        assert stream.span == (0.0, 0.0)
        stream.extend([Activation(0, 1, 1.0), Activation(1, 2, 4.0)])
        assert stream.span == (1.0, 4.0)

    def test_until_binary_search(self, graph):
        stream = ActivationStream(
            graph,
            [Activation(0, 1, 1.0), Activation(1, 2, 2.0), Activation(2, 3, 3.0)],
        )
        assert len(stream.until(0.5)) == 0
        assert len(stream.until(2.0)) == 2
        assert len(stream.until(99.0)) == 3

    def test_batches_by_timestamp(self, graph):
        stream = ActivationStream(
            graph,
            [
                Activation(0, 1, 1.0),
                Activation(1, 2, 1.0),
                Activation(2, 3, 2.0),
            ],
        )
        batches = list(stream.batches_by_timestamp())
        assert [t for t, _ in batches] == [1.0, 2.0]
        assert [len(b) for _, b in batches] == [2, 1]

    def test_batches_of_size(self, graph):
        stream = ActivationStream(
            graph, [Activation(0, 1, float(i)) for i in range(5)]
        )
        batches = list(stream.batches_of_size(2))
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_batches_of_size_validates(self, graph):
        stream = ActivationStream(graph)
        with pytest.raises(ValueError):
            list(stream.batches_of_size(0))

    def test_indexing_and_iteration(self, graph):
        acts = [Activation(0, 1, 1.0), Activation(1, 2, 2.0)]
        stream = ActivationStream(graph, acts)
        assert stream[0] == acts[0]
        assert list(stream) == acts


class TestNaiveActiveness:
    def test_no_activations_is_zero(self):
        assert naive_activeness([], (0, 1), 5.0, 0.1) == 0.0

    def test_instant_activation_counts_one(self):
        acts = [Activation(0, 1, 3.0)]
        assert naive_activeness(acts, (0, 1), 3.0, 0.1) == pytest.approx(1.0)

    def test_future_activations_ignored(self):
        acts = [Activation(0, 1, 5.0)]
        assert naive_activeness(acts, (0, 1), 3.0, 0.1) == 0.0

    def test_other_edges_ignored(self):
        acts = [Activation(0, 1, 1.0), Activation(1, 2, 1.0)]
        assert naive_activeness(acts, (1, 2), 1.0, 0.1) == pytest.approx(1.0)
