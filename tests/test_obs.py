"""Tests for the observability stack (``repro.obs``).

Covers the PR's required surface:

* instrument fixes — per-consumer rate windows (a polling reader no
  longer corrupts the log line's deltas) and torn-read-free histograms;
* the span tracer — nesting, deterministic sampling, ring-buffer bound,
  and the disabled no-op fast path;
* exposition goldens — Prometheus text (validated with a test-side
  parser) and Chrome ``trace_event`` JSON;
* engine integration — phase spans, per-level repair accounting, query
  latency histograms, watcher refresh cost, and the guarantee that
  tracing does not perturb results;
* the service surface — ``metrics_text`` and ``trace`` ops end to end;
* the CLI — ``stream --trace-out/--metrics-out`` artifacts.
"""

from __future__ import annotations

import io
import json
import re
import threading

import pytest

from repro.cli import main
from repro.core.anc import ANCO, ANCOR, ANCParams
from repro.monitor import ClusterWatcher
from repro.obs import (
    DISABLED_OBS,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    SamplingProfiler,
    TraceContext,
    Tracer,
    chrome_trace,
    current_context,
    federate_snapshots,
    fleet_chrome_trace,
    fleet_trace_summary,
    phase_breakdown,
    render_prometheus,
    render_prometheus_federated,
    span_dicts,
    write_chrome_trace,
)
from repro.obs.instruments import BUCKET_BOUNDS, Histogram
from repro.service import ServerConfig
from test_service import make_stream, rpc, run_server_scenario

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? \S+$"
)


def parse_prometheus(text):
    """Validate Prometheus text exposition 0.0.4; return {metric: value}.

    Every sample line must be ``name[{labels}] value`` with a float
    value, every ``# TYPE`` must name a known type, and the text must
    end with a newline — the contract a real scraper relies on.
    """
    assert text.endswith("\n")
    samples = {}
    typed = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            assert parts[0] == "#" and parts[1] == "TYPE", line
            assert parts[3] in ("counter", "gauge", "summary", "histogram"), line
            typed[parts[2]] = parts[3]
            continue
        assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)  # raises if not a float
    return samples, typed


def enabled_obs(**tracer_kwargs):
    tracer_kwargs.setdefault("enabled", True)
    return Observability(
        registry=MetricsRegistry(), tracer=Tracer(**tracer_kwargs)
    )


def drive(engine, graph, labels, *, timestamps=6):
    acts = make_stream(graph, labels, timestamps=timestamps)
    current, batch = None, []
    for act in acts:
        if current is not None and act.t != current:
            engine.process_batch(batch)
            batch = []
        current = act.t
        batch.append(act)
    if batch:
        engine.process_batch(batch)
    return acts


# ----------------------------------------------------------------------
# Instruments: per-consumer rate windows (the snapshot-corruption fix)
# ----------------------------------------------------------------------

class FakeTime:
    """Stand-in for the ``time`` module with a controllable monotonic."""

    def __init__(self, at=100.0):
        self.at = at

    def monotonic(self):
        return self.at


class TestRateWindows:
    def _registry(self, monkeypatch):
        from repro.obs import instruments

        clock = FakeTime()
        monkeypatch.setattr(instruments, "time", clock)
        return MetricsRegistry(), clock

    def test_each_consumer_owns_its_window(self, monkeypatch):
        registry, clock = self._registry(monkeypatch)
        counter = registry.counter("acts")
        counter.inc(10)
        clock.at = 101.0
        assert registry.snapshot(rate_key="a")["rates"]["acts_per_s"] == 10.0
        counter.inc(6)
        clock.at = 103.0
        # A different consumer sees the delta since *its* last snapshot
        # (none -> registry start), not since consumer "a" looked.
        assert registry.snapshot(rate_key="b")["rates"]["acts_per_s"] == pytest.approx(16 / 3)
        # Consumer "a" still measures from t=101: (16-10)/(103-101).
        assert registry.snapshot(rate_key="a")["rates"]["acts_per_s"] == 3.0

    def test_read_only_snapshot_never_advances_windows(self, monkeypatch):
        """The regression the PR fixes: a polling ``metrics`` op used to
        reset the shared rate baseline, zeroing the operator log line's
        deltas.  Read-only snapshots must leave every window untouched."""
        registry, clock = self._registry(monkeypatch)
        counter = registry.counter("acts")
        counter.inc(8)
        clock.at = 102.0
        assert registry.snapshot(rate_key="log")["rates"]["acts_per_s"] == 4.0
        counter.inc(4)
        clock.at = 103.0
        # Hammer the read-only path in between, as a polling client would.
        for _ in range(5):
            doc = registry.snapshot(rate_key=None)
            # Lifetime average: 12 counts over 3 seconds of uptime.
            assert doc["rates"]["acts_per_s"] == 4.0
        clock.at = 104.0
        # The log consumer's delta covers everything since *its* last
        # snapshot at t=102 — the polling reads did not steal it.
        assert registry.snapshot(rate_key="log")["rates"]["acts_per_s"] == 2.0

    def test_log_line_uses_its_own_window(self, monkeypatch):
        registry, clock = self._registry(monkeypatch)
        registry.counter("acts").inc(5)
        clock.at = 101.0
        registry.snapshot(rate_key="client")  # someone else polls first
        clock.at = 105.0
        assert "acts_per_s=1.0" in registry.log_line()


class TestHistogram:
    def test_summary_is_a_single_consistent_view(self):
        """Concurrent torn-read regression: with every observation equal
        to 1.0, any consistent (count, sum) view yields mean exactly 1.0;
        a count read apart from its sum would not."""
        hist = Histogram("lat", window=64)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                hist.observe(1.0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(300):
                summary = hist.summary()
                if summary["count"]:
                    assert summary["mean"] == 1.0
                assert hist.mean in (0.0, 1.0)
        finally:
            stop.set()
            thread.join()

    def test_summary_and_percentiles(self):
        hist = Histogram("lat", window=100)
        for v in range(1, 101):
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["count"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.0, abs=1.0)
        assert summary["max"] == 100.0
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_window_bound_keeps_lifetime_totals(self):
        hist = Histogram("lat", window=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            hist.observe(v)
        assert hist.count == 6
        assert hist.sum == 21.0
        assert hist.percentile(0) == 3.0  # 1.0 and 2.0 fell off the window

    def test_empty_summary(self):
        summary = Histogram("lat").summary()
        assert summary == {
            "count": 0.0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
            "max": 0.0,
        }


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_nesting_depth_and_exit_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="batch"):
            with tracer.span("inner"):
                pass
        spans = tracer.spans()
        assert [(s.name, s.depth) for s in spans] == [("inner", 1), ("outer", 0)]
        assert spans[1].args == {"kind": "batch"}
        assert all(s.duration >= 0.0 for s in spans)

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        # The fast path allocates nothing: same object every call.
        assert tracer.span("a") is tracer.span("b")
        with tracer.span("a"):
            pass
        assert tracer.spans() == [] and tracer.recorded == 0

    def test_ring_buffer_bound(self):
        tracer = Tracer(enabled=True, capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert [s.name for s in tracer.drain()] == ["s6", "s7", "s8", "s9"]
        assert len(tracer) == 0

    def test_deterministic_sampling(self):
        tracer = Tracer(enabled=True, sample=0.5)
        for _ in range(10):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        # The per-thread accumulator records exactly every other root —
        # and each unsampled root mutes its children too.
        assert tracer.recorded == 10  # 5 roots + 5 children
        assert tracer.sampled_out == 5
        by_name = {}
        for span in tracer.spans():
            by_name[span.name] = by_name.get(span.name, 0) + 1
        assert by_name == {"root": 5, "child": 5}

    def test_sampling_is_repeatable(self):
        def run():
            tracer = Tracer(enabled=True, sample=0.25)
            for i in range(12):
                with tracer.span("root", i=i):
                    pass
            return [s.args["i"] for s in tracer.spans()]

        assert run() == run() and len(run()) == 3

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample=0.0)
        with pytest.raises(ValueError):
            Tracer().set_sample(1.5)
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_external_record_and_status(self):
        tracer = Tracer(enabled=True, capacity=8)
        tracer.record("bench.update", duration=0.125, method="ANCO")
        (span,) = tracer.spans()
        assert span.duration == 0.125 and span.args == {"method": "ANCO"}
        status = tracer.status()
        assert status["enabled"] is True
        assert status["buffered"] == 1 and status["recorded"] == 1
        tracer.disable()
        tracer.record("ignored", duration=1.0)
        assert tracer.status()["recorded"] == 1


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------

class TestExposition:
    def test_prometheus_text_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("acts ingested").inc(7)  # name needs sanitizing
        registry.gauge("depth", lambda: 3.5)
        hist = registry.histogram("latency_seconds")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        text = render_prometheus(registry, namespace="anc")
        samples, typed = parse_prometheus(text)
        assert samples["anc_acts_ingested_total"] == 7.0
        assert typed["anc_acts_ingested_total"] == "counter"
        assert samples["anc_depth"] == 3.5
        assert typed["anc_latency_seconds"] == "summary"
        assert samples['anc_latency_seconds{quantile="0.5"}'] == 0.2
        assert samples["anc_latency_seconds_sum"] == pytest.approx(0.6)
        assert samples["anc_latency_seconds_count"] == 3.0

    def test_prometheus_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_chrome_trace_document(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("batch", size=2):
            with tracer.span("activation"):
                pass
        doc = chrome_trace(tracer)
        json.loads(json.dumps(doc))  # strictly JSON-able
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert [e["name"] for e in events] == ["batch", "activation"]
        batch, activation = events
        assert all(e["ph"] == "X" for e in events)
        assert batch["args"] == {"size": 2, "depth": 0}
        assert activation["args"]["depth"] == 1
        # Microsecond layout: the child lies inside the parent.
        assert batch["ts"] <= activation["ts"]
        assert activation["ts"] + activation["dur"] <= batch["ts"] + batch["dur"] + 1e-3
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        assert json.loads(path.read_text())["traceEvents"] == events

    def test_phase_breakdown(self):
        tracer = Tracer(enabled=True)
        tracer.record("update", duration=0.5)
        tracer.record("update", duration=1.5)
        tracer.record("query", duration=0.25)
        phases = phase_breakdown(tracer)
        assert phases["update"]["count"] == 2
        assert phases["update"]["total_s"] == 2.0
        assert phases["update"]["mean_s"] == 1.0
        assert phases["update"]["max_s"] == 1.5
        assert phases["query"]["count"] == 1


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------

class TestEngineIntegration:
    def test_default_engine_is_dark(self, small_planted, quick_params):
        graph, labels = small_planted
        engine = ANCO(graph, quick_params)
        assert engine.obs is DISABLED_OBS
        drive(engine, graph, labels, timestamps=3)
        assert len(NULL_TRACER) == 0

    def test_phase_spans_cover_the_hot_path(self, small_planted, quick_params):
        graph, labels = small_planted
        obs = enabled_obs(capacity=65536)
        engine = ANCO(graph, quick_params, obs=obs)
        drive(engine, graph, labels, timestamps=4)
        engine.clusters()
        names = {s.name for s in obs.tracer.spans()}
        assert {
            "process_batch", "activation", "activeness", "reinforce",
            "index_repair", "decay_tick", "query_clusters",
        } <= names
        depth_of = {s.name: s.depth for s in obs.tracer.spans()}
        assert depth_of["process_batch"] == 0
        assert depth_of["activation"] == 1
        assert depth_of["activeness"] == 2

    def test_per_level_counters_sum_to_totals(self, small_planted, quick_params):
        graph, labels = small_planted
        obs = enabled_obs()
        engine = ANCO(graph, quick_params, obs=obs)
        drive(engine, graph, labels, timestamps=4)
        index = engine.index
        assert index.update_count > 0
        assert sum(index.touched_by_level.values()) == index.total_touched
        assert sum(index.repairs_by_level.values()) == (
            index.update_count * index.k * index.num_levels
        )
        assert index.update_increases + index.update_decreases == index.update_count
        stats = engine.stats()
        assert stats["index_touched_by_level"] == dict(
            sorted(index.touched_by_level.items())
        )
        assert stats["index_update_increases"] == index.update_increases

    def test_gauges_track_engine_stats(self, small_planted, quick_params):
        graph, labels = small_planted
        obs = enabled_obs()
        engine = ANCO(graph, quick_params, obs=obs)
        acts = drive(engine, graph, labels, timestamps=4)
        gauges = obs.registry.gauges()
        assert gauges["engine_activations"].value == float(len(acts))
        assert gauges["index_updates"].value == float(engine.index.update_count)
        per_level = sum(
            gauges[f"index_level{level}_touched"].value
            for level in range(1, engine.index.num_levels + 1)
        )
        assert per_level == float(engine.index.total_touched)

    def test_query_latency_histograms(self, small_planted, quick_params):
        graph, labels = small_planted
        obs = enabled_obs()
        engine = ANCO(graph, quick_params, obs=obs)
        drive(engine, graph, labels, timestamps=3)
        engine.clusters()
        engine.cluster_of(0)
        assert obs.registry.histogram("query_clusters_seconds").count == 1
        assert obs.registry.histogram("query_local_seconds").count == 1

    def test_watcher_refresh_cost_is_measured(self, small_planted, quick_params):
        graph, labels = small_planted
        obs = enabled_obs(capacity=65536)
        engine = ANCOR(graph, quick_params, obs=obs)
        watcher = ClusterWatcher(engine)
        watcher.watch(0)
        acts = make_stream(graph, labels, timestamps=4)
        batches = 0
        current, batch = None, []
        for act in acts:
            if current is not None and act.t != current:
                watcher.process_batch(batch)
                batches += 1
                batch = []
            current = act.t
            batch.append(act)
        if batch:
            watcher.process_batch(batch)
            batches += 1
        registry = obs.registry
        assert registry.counter("watcher_batches").value == float(batches)
        assert registry.histogram("watcher_refresh_seconds").count == batches
        assert registry.counter("watcher_touched_nodes").value > 0
        assert "watcher_refresh" in {s.name for s in obs.tracer.spans()}

    def test_tracing_does_not_perturb_results(self, small_planted, quick_params):
        graph, labels = small_planted
        dark = ANCO(graph, quick_params)
        traced = ANCO(graph, quick_params, obs=enabled_obs(capacity=65536))
        drive(dark, graph, labels, timestamps=5)
        drive(traced, graph, labels, timestamps=5)
        assert dark.index.weights_view() == traced.index.weights_view()
        assert dark.clusters() == traced.clusters()
        assert traced.obs.tracer.recorded > 0


# ----------------------------------------------------------------------
# Service surface
# ----------------------------------------------------------------------

class TestServiceObservability:
    def test_metrics_text_op(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=5)

        async def scenario(reader, writer, server):
            items = [[a.u, a.v, a.t] for a in acts]
            await rpc(reader, writer, op="ingest_batch", items=items)
            await rpc(reader, writer, op="sync")
            return await rpc(reader, writer, op="metrics_text")

        response = run_server_scenario(
            scenario, graph_and_labels=small_planted, params=quick_params
        )
        assert response["ok"] is True
        samples, typed = parse_prometheus(response["text"])
        assert samples["anc_activations_ingested_total"] == float(len(acts))
        assert typed["anc_activations_ingested_total"] == "counter"
        # Engine gauges fold into the same registry via attach_obs.
        assert samples["anc_engine_activations"] == float(len(acts))

    def test_trace_op_round_trip(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=5)

        async def scenario(reader, writer, server):
            off = await rpc(reader, writer, op="trace")
            started = await rpc(reader, writer, op="trace", action="start")
            items = [[a.u, a.v, a.t] for a in acts]
            await rpc(reader, writer, op="ingest_batch", items=items)
            await rpc(reader, writer, op="sync")
            await rpc(reader, writer, op="clusters")
            dump = await rpc(reader, writer, op="trace", action="dump")
            drained = await rpc(reader, writer, op="trace", action="status")
            stopped = await rpc(reader, writer, op="trace", action="stop")
            bad = await rpc(reader, writer, op="trace", action="bogus")
            return off, started, dump, drained, stopped, bad

        # Small ring: the in-process harness reads replies through an
        # asyncio stream with the default 64 KiB line limit (the real
        # ServiceClient has none), so keep the dump compact.
        config = ServerConfig(metrics_interval=0.0, trace_capacity=200)
        off, started, dump, drained, stopped, bad = run_server_scenario(
            scenario, graph_and_labels=small_planted, params=quick_params,
            config=config,
        )
        assert off["enabled"] is False
        assert started["enabled"] is True
        events = dump["trace"]["traceEvents"]
        names = {e["name"] for e in events}
        # The writer drives the engine per activation (deterministic
        # batch hooks), so the engine phases nest under "activation".
        assert {"activation", "index_repair", "query_clusters"} <= names
        assert {e["args"]["depth"] for e in events} >= {0, 1}
        assert drained["buffered"] == 0  # dump drains by default
        assert stopped["enabled"] is False
        assert bad["ok"] is False and "unknown trace action" in bad["error"]

    def test_metrics_op_is_read_only_by_default(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=5)

        async def scenario(reader, writer, server):
            items = [[a.u, a.v, a.t] for a in acts]
            await rpc(reader, writer, op="ingest_batch", items=items)
            await rpc(reader, writer, op="sync")
            for _ in range(3):
                await rpc(reader, writer, op="metrics")
            assert server.metrics._rate_windows == {}
            keyed = await rpc(reader, writer, op="metrics", rate_key="mine")
            assert "mine" in server.metrics._rate_windows
            return keyed

        keyed = run_server_scenario(
            scenario, graph_and_labels=small_planted, params=quick_params
        )
        assert keyed["metrics"]["counters"]["activations_ingested"] == float(
            len(acts)
        )


# ----------------------------------------------------------------------
# CLI artifacts
# ----------------------------------------------------------------------

class TestCliTracing:
    def test_stream_trace_and_metrics_out(self, tmp_path):
        edgelist = tmp_path / "stream.tsv"
        edgelist.write_text(
            "a b 1\nb c 1\na c 2\nc d 2\nd a 3\na b 3\nb c 4\n"
        )
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        out = io.StringIO()
        code = main(
            [
                "stream", str(edgelist),
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ],
            out,
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"process_batch", "activation", "index_repair"} <= names
        assert {e["args"]["depth"] for e in doc["traceEvents"]} >= {0, 1, 2}
        metrics = json.loads(metrics_path.read_text())
        assert metrics["gauges"]["engine_activations"] == 7.0
        assert "wrote Chrome trace" in out.getvalue()

# ----------------------------------------------------------------------
# Cross-process trace propagation
# ----------------------------------------------------------------------

class TestPropagation:
    def test_wire_round_trip(self):
        ctx = TraceContext("trace-1", "a.1", True)
        back = TraceContext.from_wire(ctx.to_wire())
        assert (back.trace_id, back.span_id, back.sampled) == (
            "trace-1", "a.1", True,
        )

    def test_malformed_envelopes_dropped_not_rejected(self):
        for bad in (None, 7, "x", [], {}, {"span": "s"}, {"id": ""}, {"id": 3}):
            assert TraceContext.from_wire(bad) is None
        # A missing/garbled span id degrades to "", not a rejection.
        ctx = TraceContext.from_wire({"id": "t", "span": 42, "sampled": 1})
        assert ctx is not None
        assert ctx.span_id == "" and ctx.sampled is True

    def test_child_keeps_trace_id_and_sampling(self):
        child = TraceContext("t", "p.1", True).child("p.2")
        assert (child.trace_id, child.span_id, child.sampled) == ("t", "p.2", True)

    def test_sampled_wire_span_records_and_parents(self):
        # The sampled flag is the switch: tracer.enabled stays False.
        tracer = Tracer(enabled=False, capacity=16)
        root = TraceContext("t", "root.1", True)
        with tracer.wire_span("server.clusters", root, op="clusters"):
            bound = current_context()
            assert bound is not None and bound.trace_id == "t"
            assert bound.span_id != "root.1"  # a fresh child id
        assert current_context() is None  # unbound on exit
        (span,) = tracer.spans()
        assert span.name == "server.clusters"
        assert span.trace_id == "t"
        assert span.parent_id == "root.1"
        assert span.span_id == bound.span_id
        assert span.args["op"] == "clusters"

    def test_unsampled_wire_span_binds_but_records_nothing(self):
        tracer = Tracer(enabled=False, capacity=16)
        root = TraceContext("t", "root.1", False)
        with tracer.wire_span("server.clusters", root):
            assert current_context() is root  # propagated verbatim
        assert current_context() is None
        assert tracer.spans() == []

    def test_no_context_anywhere_is_a_noop(self):
        tracer = Tracer(enabled=False, capacity=16)
        with tracer.wire_span("server.clusters"):
            assert current_context() is None
        assert tracer.spans() == []

    def test_nested_wire_spans_form_a_chain(self):
        # router request span -> forward span, linked parent to child,
        # the forward picking up the bound context implicitly.
        tracer = Tracer(enabled=False, capacity=16)
        root = TraceContext("t", "client.1", True)
        with tracer.wire_span("router.clusters", root):
            with tracer.wire_span("router.forward", shard=0):
                pass
        request, forward = sorted(tracer.spans(), key=lambda s: s.start)
        assert request.parent_id == "client.1"
        assert forward.parent_id == request.span_id
        # One root: the whole chain is a connected tree.
        summary = fleet_trace_summary(
            [{"pid": 1, "process": "router", "spans": span_dicts([request, forward])}]
        )
        assert summary["t"]["connected"] is True
        assert summary["t"]["roots"] == ["router.clusters"]


# ----------------------------------------------------------------------
# Metrics federation
# ----------------------------------------------------------------------

def _hist_doc(values):
    hist = Histogram("lat", window=128)
    for v in values:
        hist.observe(v)
    return {**hist.summary(), "buckets": hist.bucket_counts()}


class TestFederation:
    def _sources(self):
        return [
            (
                {"role": "worker", "shard": "0"},
                {
                    "counters": {"activations_applied": 60.0},
                    "gauges": {"queue_depth": 6.0},
                    "histograms": {"ingest_latency": _hist_doc([0.001] * 4)},
                },
            ),
            (
                {"role": "worker", "shard": "1"},
                {
                    "counters": {"activations_applied": 40.0},
                    "gauges": {"queue_depth": 1.0},
                    "histograms": {"ingest_latency": _hist_doc([0.004] * 4)},
                },
            ),
        ]

    def test_counters_sum_gauges_never(self):
        doc = federate_snapshots(self._sources())
        assert doc["counters"]["activations_applied"] == 100.0
        # The whole point: 6 + 1 = 7 describes no real queue.
        gauges = doc["gauges"]["queue_depth"]
        assert gauges == {
            'role="worker",shard="0"': 6.0,
            'role="worker",shard="1"': 1.0,
        }
        assert 7.0 not in gauges.values()

    def test_histograms_merge_bucket_wise(self):
        doc = federate_snapshots(self._sources())
        merged = doc["histograms"]["ingest_latency"]
        assert merged["count"] == 8.0
        assert sum(merged["buckets"]) == 8.0
        # Quantiles come from the merged distribution: p50 lands in the
        # 1 ms region, p99 in the 4 ms region.
        assert merged["p50"] <= 0.004 <= merged["p99"] * 4.001

    def test_federated_prometheus_is_valid_and_grouped(self):
        text = render_prometheus_federated(self._sources(), namespace="anc")
        samples, typed = parse_prometheus(text)
        assert samples['anc_queue_depth{role="worker",shard="0"}'] == 6.0
        assert samples['anc_queue_depth{role="worker",shard="1"}'] == 1.0
        assert 'anc_queue_depth 7.0' not in text  # no summed gauge sample
        assert typed["anc_queue_depth"] == "gauge"
        assert typed["anc_activations_applied_total"] == "counter"
        assert typed["anc_ingest_latency"] == "histogram"
        # Exposition grouping: one TYPE block per metric, all of a
        # metric's samples contiguous beneath it (the 0.0.4 contract).
        for metric in ("anc_queue_depth", "anc_activations_applied_total"):
            assert text.count(f"# TYPE {metric} ") == 1
        lines = [l for l in text.splitlines() if l]
        block = None
        for line in lines:
            if line.startswith("# TYPE"):
                block = line.split()[2]
                continue
            name = line.split("{", 1)[0].split(" ", 1)[0]
            stripped = name
            for suffix in ("_bucket", "_sum", "_count"):
                if block and name == block + suffix:
                    stripped = block
            assert stripped == block, f"{line!r} outside its TYPE block"
        # Histogram buckets are cumulative and end at +Inf == _count.
        inf = samples['anc_ingest_latency_bucket{le="+Inf"}']
        assert inf == samples["anc_ingest_latency_count"] == 8.0

    def test_empty_sources(self):
        assert render_prometheus_federated([]) == ""
        doc = federate_snapshots([])
        assert doc["counters"] == {} and doc["gauges"] == {}


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------

class TestSamplingProfiler:
    def test_phase_attribution_and_report_shape(self):
        tracer = Tracer(enabled=True, capacity=64)
        profiler = SamplingProfiler(hz=500.0, tracer=tracer)
        stop = threading.Event()

        def burn():
            with tracer.span("hot_phase"):
                while not stop.is_set():
                    sum(i * i for i in range(200))

        worker = threading.Thread(target=burn, daemon=True)
        with profiler:
            worker.start()
            while profiler.samples < 20:
                pass
            stop.set()
            worker.join()
        report = profiler.report()
        assert set(report) >= {
            "hz", "duration_s", "samples", "phases", "top_functions", "collapsed",
        }
        assert report["samples"] >= 20
        assert "hot_phase" in report["phases"]
        phase = report["phases"]["hot_phase"]
        assert phase["samples"] > 0 and 0.0 < phase["share"] <= 1.0
        assert report["top_functions"], "no stacks sampled"
        # The worker's full stack shows up in the collapsed output.
        assert any("burn" in line for line in report["collapsed"])
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in report["collapsed"])
        # track_open is returned to the tracer when the window closes.
        assert profiler.running is False

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)

    def test_status_is_compact(self):
        profiler = SamplingProfiler(hz=97.0)
        status = profiler.status()
        assert status == {
            "running": False, "hz": 97.0, "samples": 0, "stacks": 0,
        }


# ----------------------------------------------------------------------
# Fleet trace export
# ----------------------------------------------------------------------

class TestFleetExport:
    def _processes(self):
        # client -> router -> worker, hand-rolled in trace_fetch shape.
        return [
            {
                "pid": 100, "name": "client",
                "spans": [
                    {"name": "client.clusters", "start": 10.0, "dur": 0.5,
                     "depth": 0, "tid": 1, "args": {},
                     "trace": "t1", "span": "c.1", "parent": "c.0"},
                ],
            },
            {
                "pid": 200, "name": "router",
                "spans": [
                    {"name": "router.clusters", "start": 10.1, "dur": 0.3,
                     "depth": 0, "tid": 1, "args": {},
                     "trace": "t1", "span": "r.1", "parent": "c.1"},
                ],
            },
            {
                "pid": 300, "name": "shard-0",
                "spans": [
                    {"name": "server.clusters", "start": 10.2, "dur": 0.1,
                     "depth": 0, "tid": 1, "args": {},
                     "trace": "t1", "span": "w.1", "parent": "r.1"},
                    {"name": "index_repair", "start": 10.25, "dur": 0.01,
                     "depth": 1, "tid": 2, "args": {}},
                ],
            },
        ]

    def test_pid_lanes_and_flow_arrows(self):
        doc = fleet_chrome_trace(self._processes())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
        assert {m["args"]["name"] for m in meta} == {"client", "router", "shard-0"}
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {100, 200, 300}
        # Timeline anchored at the earliest span.
        assert min(e["ts"] for e in slices) == 0.0
        flows = [e for e in events if e["ph"] in ("s", "f")]
        # Two parent->child links, one "s" + one "f" each.
        assert len(flows) == 4
        assert {f["id"] for f in flows} == {"c.1->r.1", "r.1->w.1"}

    def test_trace_id_filter_drops_engine_spans(self):
        doc = fleet_chrome_trace(self._processes(), trace_id="t1")
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "index_repair" not in names
        assert {"client.clusters", "router.clusters", "server.clusters"} <= names

    def test_summary_connected_tree(self):
        summary = fleet_trace_summary(self._processes())
        assert summary["t1"]["spans"] == 3
        assert summary["t1"]["pids"] == [100, 200, 300]
        assert summary["t1"]["roots"] == ["client.clusters"]
        assert summary["t1"]["connected"] is True

    def test_summary_detects_disconnection(self):
        processes = self._processes()
        processes[1]["spans"][0]["parent"] = "nonexistent.9"
        summary = fleet_trace_summary(processes)
        assert summary["t1"]["connected"] is False
        assert len(summary["t1"]["roots"]) == 2

    def test_span_dicts_carry_absolute_time_and_ids(self):
        tracer = Tracer(enabled=False, capacity=8)
        with tracer.wire_span("client.ping", TraceContext("t", "r.0", True)):
            pass
        (doc,) = span_dicts(tracer)
        assert doc["start"] > 1e9  # absolute unix seconds, not epoch-relative
        assert doc["trace"] == "t" and doc["parent"] == "r.0"
        engine = Tracer(enabled=True, capacity=8)
        with engine.span("activation"):
            pass
        (plain,) = span_dicts(engine)
        assert "trace" not in plain and plain["name"] == "activation"
