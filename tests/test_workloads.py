"""Tests for dataset stand-ins, stream generators and the case study."""


import pytest

from repro.core.activation import Activation
from repro.workloads.case_study import FOCAL, TRACKED, build_case_study
from repro.workloads.datasets import (
    ACTIVATION_SETS,
    GROUND_TRUTH_SETS,
    SPECS,
    dataset_names,
    load_dataset,
    table1_rows,
)
from repro.workloads.streams import (
    QueryEvent,
    community_biased_stream,
    day_trace,
    mixed_workload,
    uniform_stream,
)


class TestDatasets:
    def test_all_17_names_present(self):
        assert len(SPECS) == 17
        assert dataset_names()[0] == "CO"
        assert dataset_names()[-1] == "TW"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("NOPE")

    def test_load_is_deterministic(self):
        a = load_dataset("CO")
        b = load_dataset("CO")
        assert a.graph == b.graph
        assert a.labels == b.labels

    def test_size_ordering_preserved(self):
        """Stand-in sizes follow the paper's ordering (CO < ... < TW)."""
        sizes = [load_dataset(n).graph.n for n in ("CO", "LA", "DB", "TW")]
        assert sizes == sorted(sizes)

    def test_truth_partition(self):
        data = load_dataset("CA")
        clusters = data.truth_clusters()
        assert sorted(v for c in clusters for v in c) == list(data.graph.nodes())

    def test_activation_sets_are_small(self):
        for name in ACTIVATION_SETS:
            assert load_dataset(name).graph.n <= 400

    def test_ground_truth_sets_exist(self):
        for name in GROUND_TRUTH_SETS:
            assert name in SPECS

    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 17
        for row in rows:
            assert row["standin_vertices"] <= row["paper_vertices"]
            assert row["standin_edges"] > 0

    def test_default_stream_covers_timestamps(self):
        data = load_dataset("CO")
        stream = data.default_stream(timestamps=10)
        times = {a.t for a in stream}
        assert len(times) == 10


class TestUniformStream:
    def test_batch_sizes_match_fraction(self, medium_planted):
        graph, _ = medium_planted
        stream = uniform_stream(graph, timestamps=4, fraction=0.1, seed=0)
        per_step = max(1, round(0.1 * graph.m))
        batches = list(stream.batches_by_timestamp())
        assert all(len(b) == per_step for _, b in batches)

    def test_fraction_validation(self, medium_planted):
        graph, _ = medium_planted
        with pytest.raises(ValueError):
            uniform_stream(graph, fraction=0.0)

    def test_deterministic(self, medium_planted):
        graph, _ = medium_planted
        a = uniform_stream(graph, timestamps=3, fraction=0.05, seed=9)
        b = uniform_stream(graph, timestamps=3, fraction=0.05, seed=9)
        assert list(a) == list(b)


class TestCommunityBiasedStream:
    def test_bias_respected(self, medium_planted):
        graph, labels = medium_planted
        stream = community_biased_stream(
            graph, labels, timestamps=20, fraction=0.1, intra_bias=0.95, seed=1
        )
        intra = sum(1 for a in stream if labels[a.u] == labels[a.v])
        assert intra / len(stream) > 0.85

    def test_zero_bias_prefers_inter(self, medium_planted):
        graph, labels = medium_planted
        stream = community_biased_stream(
            graph, labels, timestamps=20, fraction=0.1, intra_bias=0.0, seed=1
        )
        inter = sum(1 for a in stream if labels[a.u] != labels[a.v])
        assert inter == len(stream)

    def test_bias_validation(self, medium_planted):
        graph, labels = medium_planted
        with pytest.raises(ValueError):
            community_biased_stream(graph, labels, intra_bias=1.5)


class TestDayTrace:
    def test_minute_timestamps(self, small_planted):
        graph, _ = small_planted
        stream = day_trace(graph, minutes=60, base_per_minute=5, seed=2)
        times = sorted({a.t for a in stream})
        assert times[0] >= 1.0 and times[-1] <= 60.0

    def test_diurnal_shape(self, small_planted):
        """Midday minutes carry more activations than the edges of the day."""
        graph, _ = small_planted
        stream = day_trace(graph, minutes=200, base_per_minute=20, seed=3)
        counts = {}
        for a in stream:
            counts[a.t] = counts.get(a.t, 0) + 1
        early = sum(counts.get(float(m), 0) for m in range(1, 21))
        midday = sum(counts.get(float(m), 0) for m in range(90, 110))
        assert midday > early

    def test_deterministic(self, small_planted):
        graph, _ = small_planted
        a = day_trace(graph, minutes=30, seed=7)
        b = day_trace(graph, minutes=30, seed=7)
        assert list(a) == list(b)


class TestMixedWorkload:
    def test_replacement_fraction(self, medium_planted):
        graph, _ = medium_planted
        stream = uniform_stream(graph, timestamps=20, fraction=0.2, seed=0)
        events = mixed_workload(stream, query_fraction=0.3, seed=1)
        queries = sum(1 for e in events if isinstance(e, QueryEvent))
        assert abs(queries / len(events) - 0.3) < 0.08

    def test_zero_fraction_all_activations(self, medium_planted):
        graph, _ = medium_planted
        stream = uniform_stream(graph, timestamps=3, fraction=0.05, seed=0)
        events = mixed_workload(stream, query_fraction=0.0, seed=1)
        assert all(isinstance(e, Activation) for e in events)

    def test_validation(self, medium_planted):
        graph, _ = medium_planted
        stream = uniform_stream(graph, timestamps=1, fraction=0.05, seed=0)
        with pytest.raises(ValueError):
            mixed_workload(stream, query_fraction=1.5)


class TestCaseStudy:
    def test_exact_paper_shape(self):
        cs = build_case_study()
        assert cs.graph.n == 29
        assert len(cs.stream) == 735
        assert cs.stream.span == (1.0, 30.0)

    def test_focal_edges_exist(self):
        cs = build_case_study()
        for neighbor in TRACKED:
            assert cs.graph.has_edge(FOCAL, neighbor)

    def test_deterministic(self):
        a = build_case_study()
        b = build_case_study()
        assert list(a.stream) == list(b.stream)

    def test_phase_activations_present(self):
        cs = build_case_study()
        # v8-v7 collaboration lives in years 5..11 only.
        v7_years = {a.t for a in cs.stream if a.edge == (7, 8)}
        assert v7_years and min(v7_years) >= 5.0 and max(v7_years) <= 11.0

    def test_expectations_cover_decades(self):
        cs = build_case_study()
        for year in (10, 20, 30):
            for neighbor in TRACKED:
                assert (year, neighbor) in cs.expectations
        # Sanity: at t10 only v7 is live; at t30 v0 and v26 are.
        assert cs.expectations[(10, 7)] is True
        assert cs.expectations[(10, 0)] is False
        assert cs.expectations[(30, 26)] is True
        assert cs.expectations[(30, 7)] is False
