"""Failure-injection and adversarial-input tests.

A production system meets malformed input, pathological graphs and
abusive parameter choices.  These tests pin down how every layer fails:
loudly, early, and with a useful message — never with silent corruption.
"""

import io
import math

import pytest

from repro.core.activation import Activation, ActivationStream
from repro.core.anc import ANCO, ANCF, ANCParams
from repro.core.decay import DecayClock, ValueKind
from repro.core.metric import SimilarityFunction
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, read_temporal_edge_list
from repro.index.pyramid import PyramidIndex


class TestPathologicalGraphs:
    def test_single_node_graph_end_to_end(self):
        g = Graph(1)
        engine = ANCO(g, ANCParams(rep=1, k=2, seed=0))
        assert engine.clusters() == [[0]]
        assert engine.cluster_of(0) == [0]

    def test_two_node_graph_end_to_end(self):
        g = Graph(2, [(0, 1)])
        engine = ANCO(g, ANCParams(rep=1, k=2, seed=0, mu=1))
        engine.process(Activation(0, 1, 1.0))
        clusters = engine.clusters()
        assert sorted(v for c in clusters for v in c) == [0, 1]
        engine.index.check_consistency()

    def test_edgeless_graph(self):
        g = Graph(5)
        engine = ANCO(g, ANCParams(rep=1, k=2, seed=0))
        clusters = engine.clusters()
        assert sorted(v for c in clusters for v in c) == list(range(5))
        assert all(len(c) == 1 for c in clusters)

    def test_disconnected_graph_streams_fine(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        engine = ANCO(g, ANCParams(rep=1, k=2, seed=0, mu=2))
        for t, e in enumerate([(0, 1), (3, 4), (1, 2)], start=1):
            engine.process(Activation(*e, float(t)))
        engine.index.check_consistency()
        # Components never merge across the cut.
        for level in range(1, engine.queries.num_levels + 1):
            cluster = engine.cluster_of(0, level)
            assert not set(cluster) & {3, 4, 5}

    def test_star_graph_roles_stable(self):
        g = Graph(8, [(0, i) for i in range(1, 8)])
        engine = ANCO(g, ANCParams(rep=2, k=2, seed=0, mu=3))
        for t in range(1, 6):
            engine.process(Activation(0, 1 + t % 7, float(t)))
        engine.index.check_consistency()


class TestAbusiveParameters:
    def test_huge_lambda_underflow_guard(self):
        """λ so large that g underflows between activations: the
        min_factor guard must rescale instead of denormalizing."""
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        sf = SimilarityFunction(g, lam=50.0, rep=0, mu=2)
        for t in range(1, 30):
            sf.on_activation(Activation(0, 1, float(t * 10)))
        assert sf.clock.rescale_count > 0
        value = sf.anchored_value(0, 1)
        assert math.isfinite(value) and value > 0

    def test_zero_lambda_is_static_weights(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        sf = SimilarityFunction(g, lam=0.0, rep=0, mu=2)
        before = sf.value(0, 1)
        sf.clock.advance(1000.0)
        assert sf.value(0, 1) == before

    def test_k_one_pyramid_still_clusters(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        engine = ANCO(g, ANCParams(rep=1, k=1, seed=0, mu=2))
        clusters = engine.clusters()
        assert sorted(v for c in clusters for v in c) == list(range(6))

    def test_support_one_requires_unanimity(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        weights = {e: 1.0 for e in g.edges()}
        index = PyramidIndex(g, weights, k=3, seed=0, support=1.0)
        for u, v in g.edges():
            vote = index.same_cluster_vote(u, v, 1)
            assert vote == (index.vote_count(u, v, 1) == 3)


class TestMalformedStreams:
    def test_activation_on_missing_edge_raises_everywhere(self):
        g = Graph(3, [(0, 1)])
        engine = ANCO(g, ANCParams(rep=0, k=1, seed=0))
        stream = ActivationStream(g)
        with pytest.raises(ValueError):
            stream.append(Activation(1, 2, 1.0))

    def test_backwards_time_raises_in_engine(self):
        g = Graph(3, [(0, 1), (1, 2)])
        engine = ANCO(g, ANCParams(rep=0, k=1, seed=0))
        engine.process(Activation(0, 1, 5.0))
        with pytest.raises(ValueError):
            engine.process(Activation(1, 2, 4.0))

    def test_nan_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Activation(0, 1, float("nan") if float("nan") < 0 else -1.0)

    def test_engine_state_consistent_after_rejected_activation(self):
        """A rejected activation must not half-apply."""
        g = Graph(3, [(0, 1), (1, 2)])
        engine = ANCO(g, ANCParams(rep=0, k=1, seed=0, mu=2))
        engine.process(Activation(0, 1, 5.0))
        snapshot = engine.metric.snapshot_similarities()
        with pytest.raises(ValueError):
            engine.process(Activation(1, 2, 1.0))  # time goes backwards
        assert engine.metric.snapshot_similarities() == snapshot
        engine.index.check_consistency()


class TestMalformedFiles:
    def test_edge_list_with_garbage_line(self):
        with pytest.raises(ValueError, match="line 2"):
            read_edge_list(io.StringIO("a b\ngarbage\n"))

    def test_temporal_with_non_numeric_time(self):
        with pytest.raises(ValueError):
            read_temporal_edge_list(io.StringIO("a b notatime\n"))

    def test_empty_file_yields_empty_graph(self):
        graph, names = read_edge_list(io.StringIO(""))
        assert graph.n == 0 and names == []


class TestNumericalEdges:
    def test_tiny_weights_do_not_break_index(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        weights = {e: 1.0 for e in g.edges()}
        index = PyramidIndex(g, weights, k=2, seed=0)
        index.update_edge_weight(0, 1, 1e-300)
        index.check_consistency()
        index.update_edge_weight(0, 1, 1e300)
        index.check_consistency()

    def test_anchored_values_finite_after_many_rescales(self):
        clock = DecayClock(1.0, rescale_every=2, min_factor=1e-6)
        store = clock.register(ValueKind.POSITIVE)
        store.set_actual(0, 1, 1.0)
        t = 0.0
        for _ in range(200):
            t += 20.0  # each advance would underflow without the guard
            clock.advance(t)
            store.add_anchored(0, 1, 1.0 / clock.global_factor())
            clock.note_activation()
        assert math.isfinite(store.anchored(0, 1))

    def test_ancf_refresh_after_long_idle(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        engine = ANCF(g, ANCParams(rep=1, k=1, seed=0, lam=0.5, mu=2))
        engine.process(Activation(0, 1, 1.0))
        engine.metric.clock.advance(500.0)  # everything decayed to ~0
        engine.refresh()
        clusters = engine.clusters()
        assert sorted(v for c in clusters for v in c) == list(range(4))
