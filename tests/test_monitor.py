"""Tests for the cluster watcher (§V-C Remarks application)."""

import pytest

from repro.core.anc import ANCO, ANCParams
from repro.index.clustering import local_cluster
from repro.monitor import ClusterChange, ClusterWatcher
from repro.workloads.streams import community_biased_stream

QUICK = ANCParams(rep=1, k=2, seed=0, rescale_every=128, mu=2, eps=0.2)


@pytest.fixture
def engine(small_planted):
    graph, _ = small_planted
    return ANCO(graph, QUICK)


class TestWatchBasics:
    def test_watch_returns_current_cluster(self, engine):
        watcher = ClusterWatcher(engine)
        cluster = watcher.watch(0)
        assert 0 in cluster
        assert watcher.current_cluster(0) == cluster

    def test_unknown_node_rejected(self, engine):
        watcher = ClusterWatcher(engine)
        with pytest.raises(ValueError):
            watcher.watch(10_000)

    def test_unwatched_level_rejected(self, engine):
        watcher = ClusterWatcher(engine, levels=[2])
        with pytest.raises(ValueError):
            watcher.watch(0, level=3)

    def test_invalid_level_rejected(self, engine):
        with pytest.raises(ValueError):
            ClusterWatcher(engine, levels=[99])

    def test_unwatch(self, engine):
        watcher = ClusterWatcher(engine)
        watcher.watch(0)
        watcher.unwatch(0)
        with pytest.raises(KeyError):
            watcher.current_cluster(0)


class TestChangeDetection:
    def test_tracked_cluster_stays_exact(self, small_planted):
        """After every batch, the watcher's cached cluster must equal a
        fresh local query — the whole point of the vote maintenance."""
        graph, labels = small_planted
        engine = ANCO(graph, QUICK)
        watcher = ClusterWatcher(engine)
        level = watcher.levels[0]
        watched = [0, 7, 23]
        for v in watched:
            watcher.watch(v)
        stream = community_biased_stream(
            graph, labels, timestamps=8, fraction=0.2, intra_bias=0.8, seed=4
        )
        for _, batch in stream.batches_by_timestamp():
            watcher.process_batch(batch)
            for v in watched:
                fresh = frozenset(local_cluster(engine.index, v, level))
                assert watcher.current_cluster(v) == fresh

    def test_events_describe_deltas(self, small_planted):
        graph, labels = small_planted
        engine = ANCO(graph, QUICK)
        watcher = ClusterWatcher(engine)
        watcher.watch(0)
        stream = community_biased_stream(
            graph, labels, timestamps=10, fraction=0.25, intra_bias=0.7, seed=9
        )
        changes = watcher.process_stream(stream)
        # Deltas must be internally consistent.
        for change in changes:
            assert isinstance(change, ClusterChange)
            assert not (change.joined & change.left)
            assert change.node == 0
            assert "node 0" in change.summary

    def test_no_events_when_nothing_watched(self, small_planted):
        graph, labels = small_planted
        engine = ANCO(graph, QUICK)
        watcher = ClusterWatcher(engine)
        stream = community_biased_stream(
            graph, labels, timestamps=3, fraction=0.1, seed=1
        )
        assert watcher.process_stream(stream) == []

    def test_drain_events(self, small_planted):
        graph, labels = small_planted
        engine = ANCO(graph, QUICK)
        watcher = ClusterWatcher(engine)
        watcher.watch(0)
        stream = community_biased_stream(
            graph, labels, timestamps=10, fraction=0.25, intra_bias=0.7, seed=9
        )
        watcher.process_stream(stream)
        drained = watcher.drain_events()
        assert watcher.events == []
        assert drained == sorted(drained, key=lambda c: c.t)


class TestMultiLevel:
    def test_two_levels_watched_independently(self, small_planted):
        graph, labels = small_planted
        engine = ANCO(graph, QUICK)
        levels = [2, engine.queries.num_levels]
        watcher = ClusterWatcher(engine, levels=levels)
        for level in levels:
            watcher.watch(0, level=level)
        stream = community_biased_stream(
            graph, labels, timestamps=6, fraction=0.2, seed=2
        )
        watcher.process_stream(stream)
        for level in levels:
            fresh = frozenset(local_cluster(engine.index, 0, level))
            assert watcher.current_cluster(0, level) == fresh


class TestAffectedSetPlumbing:
    def test_index_reports_affected_nodes(self, small_planted):
        graph, _ = small_planted
        engine = ANCO(graph, QUICK)
        engine.index.drain_affected()  # clear build-time state
        e = graph.edges()[0]
        engine.index.update_edge_weight(*e, 0.2)
        affected = engine.index.drain_affected()
        assert affected  # a real decrease re-seats someone
        # Drain clears.
        assert engine.index.drain_affected() == set()

    def test_noop_update_affects_nobody(self, small_planted):
        graph, _ = small_planted
        engine = ANCO(graph, QUICK)
        engine.index.drain_affected()
        e = graph.edges()[0]
        engine.index.update_edge_weight(*e, engine.index.weight(*e))
        assert engine.index.drain_affected() == set()
