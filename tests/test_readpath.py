"""repro.readpath: session tokens, bounded staleness, lag-aware routing.

End-to-end tests drive a real primary + follower fleet (chaos-harness
:class:`ServerThread` instances) behind a live
:class:`~repro.readpath.router.ReadRouter`
(:class:`~repro.faults.chaos.ReadRouterThread`) through the blocking
client — the same path ``repro-anc read-serve`` takes.  The contracts
under test are the ones docs/replication.md § Read routing states:

* a read carrying a session token is served only by a node whose
  applied watermark has passed it; otherwise the refusal is a *typed*
  ``STALE`` carrying both watermarks — never silently-stale data;
* ``max_staleness`` bounds a serving follower's replication lag the
  same way;
* the degradation ladder ends in a typed ``RETRY_AFTER`` once the
  primary read budget is exhausted, and the budget is bypassed when no
  followers are registered at all;
* the session survives a failover: after ``promote``, tokened reads
  through the router reflect the session's writes or refuse typed,
  and passthrough writes land on whichever node now holds the highest
  epoch (property-style sweep at the bottom).
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.anc import make_engine
from repro.faults import ServerThread, engine_signature
from repro.faults.chaos import QUICK_PARAMS, ReadRouterThread
from repro.graph.generators import planted_partition
from repro.readpath import ReadRouterConfig
from repro.replica import promote, replication_status
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.errors import Stale
from repro.service.server import ServerConfig
from repro.service.snapshots import apply_activations
from repro.workloads.streams import community_biased_stream

#: Codes a degraded read may legally surface — all typed, none stale.
TYPED_DENIALS = frozenset({"STALE", "RETRY_AFTER", "UNAVAILABLE", "TIMEOUT", "CONNECT"})


def make_workload(seed=5, *, nodes=30, timestamps=8):
    graph, labels = planted_partition(nodes, 3, p_in=0.5, p_out=0.05, seed=seed + 7)
    stream = community_biased_stream(
        graph, labels, timestamps=timestamps, fraction=0.1, seed=seed
    )
    return graph, list(stream)


def serve(graph, **config_kwargs):
    config = ServerConfig(
        port=0, engine="anco", metrics_interval=0.0, **config_kwargs
    )
    return ServerThread(graph, config=config, params=QUICK_PARAMS)


def follower_kwargs(primary_port):
    return dict(
        role="follower",
        primary_host="127.0.0.1",
        primary_port=primary_port,
        poll_interval=0.005,
        audit_interval=0.05,
    )


def wait_for(cond, *, timeout=15.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not cond():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out after {timeout}s waiting for {what}")
        time.sleep(0.01)


def caught_up(handle, target):
    host = handle.server.host
    return host.ingested >= target and host.applied >= target


def batches_of(stream, size=25):
    items = [(a.u, a.v, a.t) for a in stream]
    return [items[i : i + size] for i in range(0, len(items), size)]


def free_dead_port():
    """A port nothing listens on (bound once, then released)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def router_config(**overrides):
    base = dict(heartbeat_interval=0.05, retry_backoff=0.05)
    base.update(overrides)
    return ReadRouterConfig(**base)


# ----------------------------------------------------------------------
# Server-side read bounds: the typed STALE refusal
# ----------------------------------------------------------------------

class TestReadBounds:
    def test_stale_carries_both_watermarks(self):
        fault = Stale("behind", applied=3, required=9)
        doc = fault.to_response()
        assert doc["error_type"] == "STALE"
        assert doc["applied"] == 3
        assert doc["required"] == 9

    def test_token_past_watermark_refused_typed(self, tmp_path):
        """A read whose session token outruns the node's applied count
        must refuse with STALE, not serve the older snapshot."""
        graph, stream = make_workload(8)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            client = ServiceClient(
                primary.host, primary.port, timeout=5.0,
                retry=RetryPolicy(attempts=2, base_delay=0.01, seed=0),
            )
            try:
                client.ingest_batch([(a.u, a.v, a.t) for a in stream[:10]], key="b0")
                applied = client.sync()
                # Satisfied token: serves.
                doc = client.request("clusters", token=applied)
                assert doc["applied"] >= applied
                # Unsatisfiable token: typed STALE.
                with pytest.raises(ServiceError) as err:
                    client.request("clusters", token=applied + 1000)
                assert err.value.code == "STALE"
            finally:
                client.close()

    def test_max_staleness_bounds_follower_lag(self, tmp_path):
        """A follower whose replication lag exceeds the request's
        max_staleness refuses typed; a zero-lag one serves."""
        graph, stream = make_workload(9)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph, data_dir=tmp_path / "f", **follower_kwargs(primary.port)
            ) as follower:
                writer = ServiceClient(primary.host, primary.port, timeout=5.0)
                try:
                    for i, items in enumerate(batches_of(stream)):
                        writer.ingest_batch(items, key=f"ms-{i}")
                    total = writer.sync()
                finally:
                    writer.close()
                wait_for(
                    lambda: caught_up(follower, total), what="follower catch-up"
                )
                reader = ServiceClient(follower.host, follower.port, timeout=5.0)
                try:
                    doc = reader.request("clusters", max_staleness=0)
                    assert doc["applied"] == total
                finally:
                    reader.close()

    def test_replicas_reports_apply_age(self, tmp_path):
        """The replicas op now reports seconds since the last applied
        advance, so a heartbeating-but-stuck follower is visible."""
        graph, stream = make_workload(10)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph, data_dir=tmp_path / "f", **follower_kwargs(primary.port)
            ) as follower:
                writer = ServiceClient(primary.host, primary.port, timeout=5.0)
                try:
                    writer.ingest_batch(
                        [(a.u, a.v, a.t) for a in stream[:20]], key="aa-0"
                    )
                    total = writer.sync()
                finally:
                    writer.close()
                wait_for(
                    lambda: caught_up(follower, total), what="follower catch-up"
                )
                status = replication_status(("127.0.0.1", primary.port), timeout=5.0)
                replicas = status["replicas"]
                assert replicas, "follower should have acked by now"
                info = next(iter(replicas.values()))
                assert info["applied"] == total
                assert isinstance(info["apply_age"], float)
                assert info["apply_age"] >= 0.0
                assert isinstance(info["age"], float)


# ----------------------------------------------------------------------
# Client sessions: tokens advance on writes, shed windows reset on epoch
# ----------------------------------------------------------------------

class TestSessionClient:
    def test_session_token_advances_with_writes(self, tmp_path):
        graph, stream = make_workload(11)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            client = ServiceClient(
                primary.host, primary.port, timeout=5.0, session_reads=True
            )
            try:
                assert client.session_token == 0
                seq = client.ingest_batch(
                    [(a.u, a.v, a.t) for a in stream[:10]], key="tok-0"
                )
                assert client.session_token == seq + 1
                # sync() can only raise the watermark, never lower it.
                applied = client.sync()
                assert client.session_token >= applied
                doc = client.clusters_info()
                assert doc["applied"] >= client.session_token
            finally:
                client.close()

    def test_shed_windows_cleared_on_epoch_advance(self):
        """A RETRY_AFTER shed window recorded against the pre-failover
        topology must not outlive a promotion (observed epoch advance)."""
        client = ServiceClient.__new__(ServiceClient)
        client.last_epoch = 1
        client._shed_until = {0: time.monotonic() + 60.0, 1: time.monotonic() + 60.0}
        previous = client._observe_epoch({"epoch": 1, "role": "primary"})
        assert previous == 1 and client._shed_until  # no advance: windows stay
        previous = client._observe_epoch({"epoch": 2, "role": "primary"})
        assert previous == 1
        assert client._shed_until == {}  # promotion clears every window


# ----------------------------------------------------------------------
# The router: lag-aware fan-out and the degradation ladder
# ----------------------------------------------------------------------

class TestReadRouter:
    def test_read_your_writes_and_fanout(self, tmp_path):
        """A tokened session through the router never reads below its
        own writes, and reads spread across caught-up followers."""
        graph, stream = make_workload(12)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph, data_dir=tmp_path / "f1", **follower_kwargs(primary.port)
            ) as f1, serve(
                graph, data_dir=tmp_path / "f2", **follower_kwargs(primary.port)
            ) as f2:
                with ReadRouterThread(
                    ("127.0.0.1", primary.port),
                    followers=[
                        ("127.0.0.1", f1.port),
                        ("127.0.0.1", f2.port),
                    ],
                    config=router_config(),
                ) as rt:
                    client = ServiceClient(
                        rt.host, rt.port, timeout=5.0, session_reads=True,
                        retry=RetryPolicy(attempts=8, base_delay=0.02, seed=0),
                    )
                    served_by = set()
                    try:
                        for i, items in enumerate(batches_of(stream)):
                            client.ingest_batch(items, key=f"rw-{i}")
                            doc = client.clusters_info()
                            assert doc["applied"] >= client.session_token
                            served_by.add(doc["served_by"])
                        total = client.sync()
                        assert total == len(stream)
                        wait_for(lambda: caught_up(f1, total), what="f1 catch-up")
                        wait_for(lambda: caught_up(f2, total), what="f2 catch-up")
                        # Steady state: reads hit the follower fleet, and
                        # smooth WRR spreads them across both.
                        steady = set()
                        for _ in range(8):
                            steady.add(client.clusters_info()["served_by"])
                        assert steady <= {
                            f"127.0.0.1:{f1.port}",
                            f"127.0.0.1:{f2.port}",
                        }
                        assert len(steady) == 2
                    finally:
                        client.close()

    def test_follower_autoregistration_from_primary(self, tmp_path):
        """Followers acking under their host:port default id appear in
        the router's fleet without being configured."""
        graph, stream = make_workload(13)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph, data_dir=tmp_path / "f", **follower_kwargs(primary.port)
            ) as follower:
                with ReadRouterThread(
                    ("127.0.0.1", primary.port), config=router_config()
                ) as rt:
                    client = ServiceClient(rt.host, rt.port, timeout=5.0)
                    try:
                        client.ingest_batch(
                            [(a.u, a.v, a.t) for a in stream[:10]], key="ar-0"
                        )
                        wait_for(
                            lambda: client.request("route_status")[
                                "followers_alive"
                            ] >= 1,
                            what="follower auto-registration",
                        )
                        status = client.request("route_status")
                        assert f"127.0.0.1:{follower.port}" in status["upstreams"]
                    finally:
                        client.close()

    def test_budget_exhaustion_is_typed_retry_after(self, tmp_path):
        """Followers down + primary budget spent ends the ladder in a
        typed RETRY_AFTER, never silently-stale or untyped data."""
        graph, stream = make_workload(14)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            with ReadRouterThread(
                ("127.0.0.1", primary.port),
                followers=[("127.0.0.1", free_dead_port())],
                config=router_config(
                    primary_read_rate=1e-6, primary_read_burst=1.0
                ),
            ) as rt:
                client = ServiceClient(
                    rt.host, rt.port, timeout=5.0,
                    retry=RetryPolicy(attempts=1),
                )
                try:
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in stream[:10]], key="bg-0"
                    )
                    # The single budget token pays for one shed read...
                    doc = client.clusters_info()
                    assert doc["served_by"] == f"127.0.0.1:{primary.port}"
                    # ...and the next one is a typed shed.
                    with pytest.raises(ServiceError) as err:
                        client.clusters_info()
                    assert err.value.code == "RETRY_AFTER"
                finally:
                    client.close()

    def test_budget_bypassed_without_followers(self, tmp_path):
        """A router fronting a lone primary is just a proxy: the primary
        read budget only meters *shedding*, not the whole read path."""
        graph, stream = make_workload(15)
        with serve(graph, data_dir=tmp_path / "p") as primary:
            with ReadRouterThread(
                ("127.0.0.1", primary.port),
                config=router_config(
                    primary_read_rate=1e-6,
                    primary_read_burst=1.0,
                    # No replicas op traffic => no auto-registration race.
                    heartbeat_interval=0.0,
                ),
            ) as rt:
                client = ServiceClient(rt.host, rt.port, timeout=5.0)
                try:
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in stream[:10]], key="nb-0"
                    )
                    for _ in range(5):
                        doc = client.clusters_info()
                        assert doc["served_by"] == f"127.0.0.1:{primary.port}"
                finally:
                    client.close()


# ----------------------------------------------------------------------
# Property-style: read-your-writes survives a failover
# ----------------------------------------------------------------------

class TestReadYourWritesAcrossFailover:
    def test_session_reads_never_older_than_token(self, tmp_path):
        """Write through the router, fail the fleet over mid-session,
        keep reading: every tokened read either reflects the session's
        writes (applied >= token) or refuses with a typed denial.  An
        ``ok`` response below the token — silent staleness — fails the
        property outright, before and after the promotion."""
        graph, stream = make_workload(16, timestamps=10)
        oracle = make_engine("ANCO", graph, QUICK_PARAMS)
        apply_activations(oracle, stream)
        batches = batches_of(stream)
        half = len(batches) // 2
        violations = []
        denials = []

        def checked_read(client):
            token = client.session_token
            try:
                doc = client.clusters_info()
            except ServiceError as exc:
                assert exc.code in TYPED_DENIALS, f"untyped denial: {exc.code}"
                denials.append(exc.code)
                return
            if doc["applied"] < token:
                violations.append((token, doc["applied"]))

        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph, data_dir=tmp_path / "f1", **follower_kwargs(primary.port)
            ) as f1, serve(
                graph, data_dir=tmp_path / "f2", **follower_kwargs(primary.port)
            ) as f2:
                with ReadRouterThread(
                    ("127.0.0.1", primary.port),
                    followers=[
                        ("127.0.0.1", f1.port),
                        ("127.0.0.1", f2.port),
                    ],
                    config=router_config(),
                ) as rt:
                    client = ServiceClient(
                        rt.host, rt.port, timeout=5.0, session_reads=True,
                        retry=RetryPolicy(
                            attempts=8, base_delay=0.02, max_delay=0.25, seed=0
                        ),
                    )
                    try:
                        for i in range(half):
                            client.ingest_batch(batches[i], key=f"fo-{i}")
                            checked_read(client)
                        pre_token = client.session_token
                        wait_for(
                            lambda: caught_up(f1, pre_token),
                            what="f1 catch-up before the failover",
                        )
                        promote(
                            ("127.0.0.1", f1.port),
                            old_primary=("127.0.0.1", primary.port),
                            timeout=2.0,
                        )
                        # The token predates the failover; the next reads
                        # must still honour it.
                        for _ in range(4):
                            checked_read(client)
                        # Passthrough writes re-resolve to the new primary.
                        for i in range(half, len(batches)):
                            client.ingest_batch(batches[i], key=f"fo-{i}")
                            checked_read(client)
                        total = client.sync()
                    finally:
                        client.close()
                    assert violations == [], (
                        f"silent-stale reads observed: {violations}"
                    )
                    assert total == len(stream)
                    assert f1.server.role == "primary"
                    assert f1.server.epoch > 1
                    # The promoted node converges on the oracle's state:
                    # the replayed/pass-through session stayed exactly-once.
                    wait_for(
                        lambda: f1.server.host.applied >= len(stream),
                        what="new primary to absorb the full session",
                    )
                    assert engine_signature(f1.server.host.engine) == (
                        engine_signature(oracle)
                    )
