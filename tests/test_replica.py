"""repro.replica: WAL-shipping replication, failover, divergence audit.

End-to-end tests drive a real primary/follower pair of
:class:`~repro.service.server.ANCServer` processes (each on its own
event loop via the chaos harness's :class:`ServerThread`) through the
blocking client — the same path ``repro-anc serve --role follower`` and
``repro-anc promote`` take.  The contracts under test are the ones
docs/replication.md states:

* a caught-up follower's engine is byte-identical to the primary's;
* followers refuse writes (``READ_ONLY``), deposed primaries refuse
  writes (``FENCED``) — the split-brain regression;
* promotion picks an epoch strictly above both nodes';
* a keyed batch replicated before a failover is absorbed by the
  promoted follower's dedup map on resend (exactly once);
* reordered/gapped fetch chunks are discarded wholesale and refetched.
"""

from __future__ import annotations

import time

import pytest

from repro.core.anc import make_engine
from repro.faults import (
    FaultPlan,
    FaultSpec,
    ServerThread,
    engine_signature,
)
from repro.faults.chaos import QUICK_PARAMS
from repro.graph.generators import planted_partition
from repro.replica import ReplicationError, promote, replication_status
from repro.replica.link import _decode_record
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.server import ServerConfig
from repro.service.snapshots import apply_activations
from repro.workloads.streams import community_biased_stream


def make_workload(seed=3, *, nodes=30, timestamps=8):
    graph, labels = planted_partition(nodes, 3, p_in=0.5, p_out=0.05, seed=seed + 7)
    stream = community_biased_stream(
        graph, labels, timestamps=timestamps, fraction=0.1, seed=seed
    )
    return graph, list(stream)


def serve(graph, plan=None, **config_kwargs):
    config = ServerConfig(
        port=0, engine="anco", metrics_interval=0.0, faults=plan, **config_kwargs
    )
    return ServerThread(graph, config=config, params=QUICK_PARAMS)


def follower_kwargs(primary_port, replica_id="test-follower"):
    return dict(
        role="follower",
        primary_host="127.0.0.1",
        primary_port=primary_port,
        replica_id=replica_id,
        poll_interval=0.005,
        audit_interval=0.05,
    )


def wait_for(cond, *, timeout=15.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not cond():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out after {timeout}s waiting for {what}")
        time.sleep(0.01)


def caught_up(handle, target):
    host = handle.server.host
    return host.ingested >= target and host.applied >= target


def counters(handle):
    return handle.server.metrics.snapshot(rate_key=None)["counters"]


def batches_of(stream, size=25):
    items = [(a.u, a.v, a.t) for a in stream]
    return [items[i : i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------------------------
# Steady-state replication
# ----------------------------------------------------------------------

class TestReplication:
    def test_follower_replicates_to_identical_state(self, tmp_path):
        """A caught-up follower holds the byte-identical engine, serves
        reads, refuses writes, and shows up in the primary's lag map."""
        graph, stream = make_workload(11)
        oracle = make_engine("ANCO", graph, QUICK_PARAMS)
        apply_activations(oracle, stream)

        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph,
                data_dir=tmp_path / "f",
                **follower_kwargs(primary.port),
            ) as follower:
                client = ServiceClient(primary.host, primary.port, timeout=5.0)
                try:
                    for i, items in enumerate(batches_of(stream)):
                        client.ingest_batch(items, key=f"rep-{i}")
                    assert client.sync() == len(stream)
                finally:
                    client.close()
                wait_for(
                    lambda: caught_up(follower, len(stream)),
                    what="follower catch-up",
                )
                assert engine_signature(
                    follower.server.host.engine
                ) == engine_signature(oracle)
                assert follower.server.epoch == primary.server.epoch == 1
                assert follower.server.diverged is None

                # Reads are served; writes are refused with the typed code.
                reader = ServiceClient(follower.host, follower.port, timeout=5.0)
                try:
                    doc = reader.request("clusters")
                    assert doc["applied"] == len(stream)
                    assert doc["role"] == "follower"
                    with pytest.raises(ServiceError) as exc:
                        reader.request("ingest", u=0, v=1, t=99.0, idempotent=False)
                    assert exc.value.code == "READ_ONLY"
                finally:
                    reader.close()

                status = replication_status(("127.0.0.1", primary.port))
                assert status["role"] == "primary"
                assert status["entries"] == len(stream)
                lag = status["replicas"]["test-follower"]
                assert lag["applied"] == len(stream) and lag["lag"] == 0

    def test_reordered_chunk_is_discarded_and_refetched(self, tmp_path):
        """A reordered wal_fetch chunk (the ``replica.fetch`` injector)
        never half-applies: the follower drops it wholesale, refetches,
        and still converges to the identical engine."""
        graph, stream = make_workload(12)
        oracle = make_engine("ANCO", graph, QUICK_PARAMS)
        apply_activations(oracle, stream)

        plan = FaultPlan([FaultSpec("replica.fetch", "reorder", at_count=1)])
        with serve(graph, plan, data_dir=tmp_path / "p") as primary:
            client = ServiceClient(primary.host, primary.port, timeout=5.0)
            try:
                for i, items in enumerate(batches_of(stream)):
                    client.ingest_batch(items, key=f"ro-{i}")
                client.sync()
            finally:
                client.close()
            # Follower starts *after* the data exists, so its very first
            # fetch returns a multi-record chunk — which the injector
            # reverses.
            with serve(
                graph,
                data_dir=tmp_path / "f",
                **follower_kwargs(primary.port),
            ) as follower:
                wait_for(
                    lambda: caught_up(follower, len(stream)),
                    what="follower catch-up after reordered chunk",
                )
                assert engine_signature(
                    follower.server.host.engine
                ) == engine_signature(oracle)
                assert counters(follower)["replica_refetches"] >= 1
                assert follower.server.diverged is None
        assert plan.fired and plan.fired[0]["kind"] == "reorder"


# ----------------------------------------------------------------------
# Failover, fencing, split brain
# ----------------------------------------------------------------------

class TestFailover:
    def test_promote_fences_old_primary(self, tmp_path):
        """Split-brain regression: after promotion the *old* primary
        refuses writes with ``FENCED`` while the promoted follower
        accepts them under a strictly higher epoch."""
        graph, stream = make_workload(13)
        half = len(stream) // 2

        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph,
                data_dir=tmp_path / "f",
                **follower_kwargs(primary.port),
            ) as follower:
                client = ServiceClient(primary.host, primary.port, timeout=5.0)
                try:
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in stream[:half]], key="sb-0"
                    )
                    client.sync()
                finally:
                    client.close()
                wait_for(
                    lambda: caught_up(follower, half), what="follower catch-up"
                )

                summary = promote(
                    ("127.0.0.1", follower.port),
                    old_primary=("127.0.0.1", primary.port),
                )
                assert summary["fenced_old"] is True
                assert summary["epoch"] == 2
                assert follower.server.role == "primary"
                assert follower.server.epoch == 2

                # The deposed primary is alive but must refuse writes.
                stale = ServiceClient(
                    primary.host,
                    primary.port,
                    timeout=5.0,
                    retry=RetryPolicy(attempts=1),
                )
                try:
                    with pytest.raises(ServiceError) as exc:
                        stale.request(
                            "ingest",
                            u=stream[0].u,
                            v=stream[0].v,
                            t=999.0,
                            idempotent=False,
                        )
                    assert exc.value.code == "FENCED"
                finally:
                    stale.close()

                # The promoted follower ingests the rest under epoch 2.
                fresh = ServiceClient(follower.host, follower.port, timeout=5.0)
                try:
                    resp = fresh.request(
                        "ingest_batch",
                        items=[[a.u, a.v, a.t] for a in stream[half:]],
                        key="sb-1",
                    )
                    assert resp["epoch"] == 2 and resp["role"] == "primary"
                    assert fresh.sync() == len(stream)
                finally:
                    fresh.close()

                oracle = make_engine("ANCO", graph, QUICK_PARAMS)
                apply_activations(oracle, stream)
                assert engine_signature(
                    follower.server.host.engine
                ) == engine_signature(oracle)

    def test_replicated_batch_dedups_after_failover(self, tmp_path):
        """Exactly once across failover: a keyed batch the follower only
        ever saw as *replicated* WAL records is absorbed by its dedup
        map when the client resends it after promotion."""
        graph, stream = make_workload(14)

        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph,
                data_dir=tmp_path / "f",
                **follower_kwargs(primary.port),
            ) as follower:
                items = [(a.u, a.v, a.t) for a in stream]
                client = ServiceClient(primary.host, primary.port, timeout=5.0)
                try:
                    client.ingest_batch(items, key="once-0")
                    client.sync()
                finally:
                    client.close()
                wait_for(
                    lambda: caught_up(follower, len(stream)),
                    what="follower catch-up",
                )
                promote(
                    ("127.0.0.1", follower.port),
                    old_primary=("127.0.0.1", primary.port),
                )

                before = follower.server.host.ingested
                fresh = ServiceClient(follower.host, follower.port, timeout=5.0)
                try:
                    resp = fresh.request(
                        "ingest_batch",
                        items=[list(item) for item in items],
                        key="once-0",
                    )
                    assert resp["accepted"] == len(items)
                finally:
                    fresh.close()
                assert follower.server.host.ingested == before
                assert counters(follower)["ingest_dedup_hits"] >= 1

    def test_promote_with_dead_primary(self, tmp_path):
        """The usual failover: the primary is gone.  Fencing is
        best-effort (``fenced_old=False``) and the promoted epoch still
        strictly exceeds every record the follower replicated."""
        graph, stream = make_workload(15)

        with serve(graph, data_dir=tmp_path / "p") as primary:
            follower = serve(
                graph, data_dir=tmp_path / "f", **follower_kwargs(primary.port)
            ).start()
            try:
                client = ServiceClient(primary.host, primary.port, timeout=5.0)
                try:
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in stream], key="dead-0"
                    )
                    client.sync()
                finally:
                    client.close()
                wait_for(
                    lambda: caught_up(follower, len(stream)),
                    what="follower catch-up",
                )
                dead_port = primary.port
                primary.stop()

                summary = promote(
                    ("127.0.0.1", follower.port),
                    old_primary=("127.0.0.1", dead_port),
                )
                assert summary["fenced_old"] is False
                # Replicated records carried epoch 1, so 2 still outranks
                # anything the dead primary could have written.
                assert summary["epoch"] == 2
                assert follower.server.role == "primary"
            finally:
                follower.stop()

    def test_client_fails_over_to_promoted_follower(self, tmp_path):
        """A client holding both endpoints rotates off the fenced old
        primary and lands its writes on the promoted follower."""
        graph, stream = make_workload(16)
        half = len(stream) // 2

        with serve(graph, data_dir=tmp_path / "p") as primary:
            with serve(
                graph,
                data_dir=tmp_path / "f",
                **follower_kwargs(primary.port),
            ) as follower:
                client = ServiceClient(
                    primary.host,
                    primary.port,
                    timeout=5.0,
                    retry=RetryPolicy(attempts=6, base_delay=0.02),
                    failover=[(follower.host, follower.port)],
                )
                try:
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in stream[:half]], key="fo-0"
                    )
                    client.sync()
                    wait_for(
                        lambda: caught_up(follower, half),
                        what="follower catch-up",
                    )
                    promote(
                        ("127.0.0.1", follower.port),
                        old_primary=("127.0.0.1", primary.port),
                    )
                    # Next write hits the fenced primary, rotates, lands.
                    client.ingest_batch(
                        [(a.u, a.v, a.t) for a in stream[half:]], key="fo-1"
                    )
                    assert client.sync() == len(stream)
                    assert client.failovers >= 1
                    assert client.last_epoch == 2
                finally:
                    client.close()
                assert follower.server.host.ingested == len(stream)


# ----------------------------------------------------------------------
# Wire-format hygiene
# ----------------------------------------------------------------------

class TestDecodeRecord:
    def test_roundtrip(self):
        record = _decode_record([7, 1, 2, 3.5, 2, "batch-9"])
        assert record.seq == 7
        assert (record.act.u, record.act.v, record.act.t) == (1, 2, 3.5)
        assert record.epoch == 2 and record.key == "batch-9"

    def test_empty_key_is_none(self):
        assert _decode_record([0, 1, 2, 3.0, 1, ""]).key is None

    @pytest.mark.parametrize(
        "raw",
        [
            "not-a-list",
            [1, 2, 3],  # wrong arity
            [1, 2, "x", 3.0, 1, None],  # non-numeric node
            None,
        ],
    )
    def test_malformed_raises_typed_error(self, raw):
        with pytest.raises(ReplicationError):
            _decode_record(raw)
