"""Unit tests for the similarity function S_t and distance metric (§IV-C)."""

import math

import pytest

from repro.core.activation import Activation
from repro.core.metric import SimilarityFunction
from repro.graph.graph import Graph
from repro.graph.traversal import INF


class TestInitialization:
    def test_rep0_runs_one_sweep(self, triangle):
        # mu=2 makes triangle nodes cores, so the single init sweep
        # applies direct+triadic consolidation to every edge.
        sf = SimilarityFunction(triangle, rep=0, mu=2)
        for u, v in triangle.edges():
            assert sf.anchored_value(u, v) != 1.0

    def test_double_initialize_rejected(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        with pytest.raises(RuntimeError):
            sf.initialize()

    def test_deferred_initialize(self, triangle):
        sf = SimilarityFunction(triangle, rep=0, initialize=False)
        assert sf.anchored_value(0, 1) == 0.0
        sf.initialize()
        assert sf.anchored_value(0, 1) > 0.0

    def test_negative_rep_rejected(self, triangle):
        with pytest.raises(ValueError):
            SimilarityFunction(triangle, rep=-1)

    def test_more_reps_separate_barbell_more(self, barbell):
        """Reinforcement repetitions widen the intra/bridge similarity gap."""
        bridge = next(e for e in barbell.edges() if (e[0] < 5) != (e[1] < 5))

        def gap(rep: int) -> float:
            sf = SimilarityFunction(barbell, rep=rep, mu=2, eps=0.2)
            return sf.anchored_value(0, 1) / sf.anchored_value(*bridge)

        assert gap(5) > gap(0) > 1.0

    def test_initial_activeness_is_uniform_one(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        for u, v in triangle.edges():
            assert sf.activeness.value(u, v) == pytest.approx(1.0)


class TestStreamUpdates:
    def test_activation_updates_only_trigger_edge_weight(self, small_planted):
        graph, _ = small_planted
        sf = SimilarityFunction(graph, rep=1)
        before = sf.snapshot_similarities()
        edge = graph.edges()[0]
        sf.on_activation(Activation(edge[0], edge[1], 1.0))
        after = sf.snapshot_similarities()
        changed = [e for e in graph.edges() if before[e] != after[e]]
        assert changed == [edge]

    def test_activation_notifies_listener(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        seen = []
        sf.add_weight_listener(lambda u, v, w: seen.append((u, v, w)))
        sf.on_activation(Activation(0, 1, 1.0))
        assert len(seen) == 1
        (u, v, w) = seen[0]
        assert (u, v) == (0, 1)
        assert w == pytest.approx(1.0 / sf.anchored_value(0, 1))

    def test_repeated_activations_increase_similarity(self, triangle):
        sf = SimilarityFunction(triangle, rep=0, mu=2)
        s0 = sf.anchored_value(0, 1)
        for t in range(1, 6):
            sf.on_activation(Activation(0, 1, float(t)))
        assert sf.anchored_value(0, 1) > s0

    def test_decay_lowers_actual_similarity(self, triangle):
        sf = SimilarityFunction(triangle, rep=0, lam=0.5)
        s0 = sf.value(0, 1)
        sf.clock.advance(4.0)
        assert sf.value(0, 1) == pytest.approx(s0 * math.exp(-2.0))

    def test_posm_across_rescale(self, triangle):
        """Lemma 4/10: actual S and S^-1 survive a batched rescale."""
        sf = SimilarityFunction(triangle, rep=0, lam=0.3, rescale_every=2)
        sf.on_activation(Activation(0, 1, 1.0))
        sf.clock.advance(2.0)
        s_before = sf.value(0, 1)
        w_before = sf.weight(0, 1)
        sf.clock.rescale()
        assert sf.value(0, 1) == pytest.approx(s_before)
        assert sf.weight(0, 1) == pytest.approx(w_before)

    def test_activeness_only_path_matches_activeness(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        s_before = sf.anchored_value(0, 1)
        sf.on_activation_activeness_only(Activation(0, 1, 1.0))
        # Similarity untouched, activeness bumped.
        assert sf.anchored_value(0, 1) == s_before
        assert sf.activeness.value(0, 1) > 1.0

    def test_recompute_resets_then_reinforces(self, triangle):
        sf = SimilarityFunction(triangle, rep=1)
        sf.on_activation(Activation(0, 1, 1.0))
        sf.recompute()
        # After recompute all values derive from S=1 + sweeps, not history.
        fresh = SimilarityFunction(triangle, rep=1)
        fresh.on_activation_activeness_only(Activation(0, 1, 1.0))
        fresh.recompute()
        for u, v in triangle.edges():
            assert sf.anchored_value(u, v) == pytest.approx(fresh.anchored_value(u, v))


class TestDistanceMetric:
    def test_weight_is_reciprocal(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        for u, v in triangle.edges():
            assert sf.weight(u, v) == pytest.approx(1.0 / sf.value(u, v))

    def test_distance_triangle_inequality_sample(self, small_planted):
        graph, _ = small_planted
        sf = SimilarityFunction(graph, rep=1)
        d01 = sf.distance(0, 1)
        d12 = sf.distance(1, 2)
        d02 = sf.distance(0, 2)
        assert d02 <= d01 + d12 + 1e-9

    def test_attraction_strength_inverse_distance(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        d = sf.distance(0, 1)
        assert sf.attraction_strength(0, 1) == pytest.approx(1.0 / d)

    def test_attraction_strength_self_is_inf(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        assert sf.attraction_strength(0, 0) == INF

    def test_attraction_strength_unreachable_is_zero(self):
        g = Graph(4, [(0, 1), (2, 3)])
        sf = SimilarityFunction(g, rep=0)
        assert sf.attraction_strength(0, 3) == 0.0

    def test_strongest_path_matches_distance(self, small_planted):
        graph, _ = small_planted
        sf = SimilarityFunction(graph, rep=1)
        strength, path = sf.strongest_path(0, 5)
        assert path[0] == 0 and path[-1] == 5
        # Path length under S^-1 equals 1/strength.
        total = sum(sf.weight(path[i], path[i + 1]) for i in range(len(path) - 1))
        assert strength == pytest.approx(1.0 / total)

    def test_negm_distance_scales_inversely(self, triangle):
        """Lemma 6: M_t is NegM — distances scale by 1/g under decay."""
        sf = SimilarityFunction(triangle, rep=0, lam=0.2)
        d0 = sf.distance(0, 1)
        sf.clock.advance(3.0)
        g = sf.clock.global_factor()
        assert sf.distance(0, 1) == pytest.approx(d0 / g)

    def test_harmonic_mean_interpretation(self):
        """Attraction = (harmonic mean of similarities) / hops on the best path."""
        g = Graph(3, [(0, 1), (1, 2)])
        sf = SimilarityFunction(g, rep=0, initialize=False)
        sf.similarity.set_anchored(0, 1, 2.0)
        sf.similarity.set_anchored(1, 2, 4.0)
        for u, v in g.edges():
            sf.activeness.store.set_anchored(u, v, 1.0)
        sf._initialized = True
        hops = 2
        harmonic = 2 / (1 / 2.0 + 1 / 4.0)
        assert sf.attraction_strength(0, 2) == pytest.approx(harmonic / hops)


class TestSnapshots:
    def test_snapshot_weights_cover_all_edges(self, small_planted):
        graph, _ = small_planted
        sf = SimilarityFunction(graph, rep=0)
        weights = sf.snapshot_weights()
        assert set(weights) == set(graph.edges())
        assert all(w > 0 for w in weights.values())

    def test_weight_fn_matches_snapshot(self, triangle):
        sf = SimilarityFunction(triangle, rep=0)
        fn = sf.weight_fn()
        snap = sf.snapshot_weights()
        for u, v in triangle.edges():
            assert fn(u, v) == pytest.approx(snap[(u, v)])
