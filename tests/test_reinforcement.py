"""Unit tests for local reinforcement (Equations 2-4)."""

import math

import pytest

from repro.core.decay import Activeness, DecayClock, ValueKind
from repro.core.reinforcement import LocalReinforcement
from repro.core.similarity import ActiveSimilarity, NodeRole
from repro.graph.graph import Graph


def make_setup(graph, *, eps=0.3, mu=2, lam=0.1, s0=1.0):
    clock = DecayClock(lam)
    act = Activeness(clock, initial={e: 1.0 for e in graph.edges()})
    sigma = ActiveSimilarity(graph, act, eps=eps, mu=mu)
    similarity = clock.register(ValueKind.POSITIVE, name="S")
    for u, v in graph.edges():
        similarity.set_anchored(u, v, s0)
    reinf = LocalReinforcement(graph, sigma, similarity)
    return clock, act, sigma, similarity, reinf


class TestProcesses:
    def test_direct_consolidation_formula(self, triangle):
        _, _, sigma, similarity, reinf = make_setup(triangle)
        # AF = F(e) * sigma(u,v) / deg(u) = 1 * 0.5 / 2.
        assert reinf.direct_consolidation(0, 1) == pytest.approx(0.25)

    def test_triadic_consolidation_formula(self, triangle):
        _, _, sigma, similarity, reinf = make_setup(triangle)
        # Common neighbor 2: sqrt(F(0,2)*F(1,2)) * sigma(2,0) / deg(0)
        expected = math.sqrt(1.0) * sigma.sigma(2, 0) / 2
        assert reinf.triadic_consolidation(0, 1) == pytest.approx(expected)

    def test_wedge_stretch_formula(self):
        # 0-1 edge; 0 also connects to 2 (exclusive); triangle 0-2-3.
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (2, 3)])
        _, _, sigma, similarity, reinf = make_setup(g)
        expected = similarity.anchored(0, 2) * sigma.sigma(2, 0) / g.degree(0)
        expected += similarity.anchored(0, 3) * sigma.sigma(3, 0) / g.degree(0)
        assert reinf.wedge_stretch(0, 1) == pytest.approx(expected)

    def test_wedge_stretch_empty_when_no_exclusive(self, triangle):
        _, _, _, _, reinf = make_setup(triangle)
        assert reinf.wedge_stretch(0, 1) == 0.0

    def test_triadic_empty_when_no_common(self):
        g = Graph(2, [(0, 1)])
        _, _, _, _, reinf = make_setup(g)
        assert reinf.triadic_consolidation(0, 1) == 0.0


class TestRoleDispatch:
    def test_core_adds_af_tf(self, triangle):
        _, _, sigma, _, reinf = make_setup(triangle, mu=2, eps=0.3)
        assert sigma.role(0) is NodeRole.CORE
        delta = reinf.delta_for_trigger(0, 1)
        expected = reinf.direct_consolidation(0, 1) + reinf.triadic_consolidation(0, 1)
        assert delta == pytest.approx(expected)
        assert delta > 0

    def test_periphery_subtracts_wsf(self):
        # 1 is a leaf (periphery with mu=2); 0 has exclusive neighbors.
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (2, 3)])
        _, _, sigma, _, reinf = make_setup(g, mu=2, eps=0.3)
        assert sigma.role(1) is NodeRole.PERIPHERY
        delta = reinf.delta_for_trigger(1, 0)
        assert delta == pytest.approx(-reinf.wedge_stretch(1, 0))

    def test_pcore_combines_all_three(self):
        # Star center: degree 3 >= mu, but no active neighbors (no triangles).
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        _, _, sigma, _, reinf = make_setup(g, mu=2, eps=0.3)
        assert sigma.role(0) is NodeRole.P_CORE
        expected = (
            reinf.direct_consolidation(0, 1)
            + reinf.triadic_consolidation(0, 1)
            - reinf.wedge_stretch(0, 1)
        )
        assert reinf.delta_for_trigger(0, 1) == pytest.approx(expected)


class TestApply:
    def test_apply_is_symmetric_in_triggers(self, triangle):
        """apply() adds both trigger nodes' contributions."""
        _, _, _, similarity, reinf = make_setup(triangle)
        d0 = reinf.delta_for_trigger(0, 1)
        d1 = reinf.delta_for_trigger(1, 0)
        new = reinf.apply(0, 1)
        assert new == pytest.approx(1.0 + d0 + d1)

    def test_floor_prevents_nonpositive_similarity(self):
        # Heavy wedge stretch on a periphery-periphery edge drives F down;
        # the floor must keep it positive.
        g = Graph(6, [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (2, 3), (4, 5)])
        clock, act, sigma, similarity, reinf = make_setup(g, mu=4)
        for _ in range(200):
            new = reinf.apply(0, 1)
        assert new >= reinf.floor
        assert similarity.anchored(0, 1) > 0

    def test_cap_bounds_growth(self, triangle):
        _, _, _, similarity, reinf = make_setup(triangle)
        for _ in range(2000):
            new = reinf.apply(0, 1)
        assert new <= reinf.cap

    def test_sweep_touches_every_edge(self, small_planted):
        graph, _ = small_planted
        _, _, _, similarity, reinf = make_setup(graph)
        reinf.sweep()
        changed = sum(
            1 for e in graph.edges() if similarity.anchored(*e) != 1.0
        )
        # Almost every edge should move (structure is non-trivial everywhere).
        assert changed > 0.8 * graph.m

    def test_reinforcement_separates_communities(self, barbell):
        """After sweeps, intra-clique similarity > bridge similarity —
        the propagation Attractor needs 50 iterations for."""
        _, _, _, similarity, reinf = make_setup(barbell, mu=2, eps=0.2)
        for _ in range(3):
            reinf.sweep()
        intra = similarity.anchored(0, 1)  # inside first K5
        bridge_edge = None
        for u, v in barbell.edges():
            if (u < 5) != (v < 5):
                bridge_edge = (u, v)
                break
        assert bridge_edge is not None
        bridge = similarity.anchored(*bridge_edge)
        assert intra > bridge

    def test_validation(self, triangle):
        clock, act, sigma, similarity, _ = make_setup(triangle)
        with pytest.raises(ValueError):
            LocalReinforcement(triangle, sigma, similarity, floor=0.0)
        with pytest.raises(ValueError):
            LocalReinforcement(triangle, sigma, similarity, floor=1.0, cap=0.5)


class TestPosMPreservation:
    def test_lemma4_reinforcement_preserves_posm(self, triangle):
        """Lemma 4: applying reinforcement then decaying == decaying then
        the actual-value relation still holds (anchored arithmetic)."""
        clock, act, sigma, similarity, reinf = make_setup(triangle)
        reinf.apply(0, 1)
        anchored = similarity.anchored(0, 1)
        clock.advance(7.0)
        g = clock.global_factor()
        assert similarity.actual(0, 1) == pytest.approx(anchored * g)
