"""Tests for the five baseline algorithms + spectral ground truth."""

import math

import pytest

from repro.baselines.attractor import Attractor, attractor, jaccard_similarity
from repro.baselines.dyna import Dyna
from repro.baselines.louvain import louvain
from repro.baselines.lwep import Lwep
from repro.baselines.scan import scan, structural_similarity
from repro.baselines.spectral import spectral_clustering
from repro.evalm import modularity, score_clustering
from repro.graph.generators import barbell_graph, caveman_relaxed, complete_graph
from repro.graph.graph import Graph


def truth_of(labels):
    return {v: lab for v, lab in enumerate(labels)}


def is_partition(clusters, n):
    return sorted(v for c in clusters for v in c) == list(range(n))


class TestLouvain:
    def test_returns_partition(self, medium_planted):
        graph, _ = medium_planted
        clusters = louvain(graph)
        assert is_partition(clusters, graph.n)

    def test_splits_barbell(self, barbell):
        clusters = louvain(barbell)
        lookup = {v: i for i, c in enumerate(clusters) for v in c}
        assert lookup[0] != lookup[9]
        assert lookup[0] == lookup[4]

    def test_recovers_planted(self, medium_planted):
        graph, labels = medium_planted
        scores = score_clustering(louvain(graph), truth_of(labels))
        assert scores["nmi"] > 0.7

    def test_modularity_beats_trivial(self, medium_planted):
        graph, _ = medium_planted
        q = modularity(graph, louvain(graph))
        assert q > modularity(graph, [list(graph.nodes())]) + 0.1

    def test_deterministic_per_seed(self, medium_planted):
        graph, _ = medium_planted
        assert louvain(graph, seed=3) == louvain(graph, seed=3)

    def test_weighted_respects_strong_edges(self):
        # 6-cycle with two heavy triangles embedded.
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3), (5, 0)])
        weights = {e: 10.0 for e in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]}
        weights[(2, 3)] = 0.1
        weights[(0, 5)] = 0.1
        clusters = louvain(g, weights)
        lookup = {v: i for i, c in enumerate(clusters) for v in c}
        assert lookup[0] == lookup[1] == lookup[2]
        assert lookup[3] == lookup[4] == lookup[5]
        assert lookup[0] != lookup[3]

    def test_tends_to_few_clusters(self, medium_planted):
        """The paper's critique: LOUV reports far fewer clusters than
        fine-grained ground truth."""
        graph, labels = medium_planted
        assert len(louvain(graph)) <= len(set(labels)) + 2


class TestScan:
    def test_structural_similarity_clique(self):
        g = complete_graph(4)
        assert structural_similarity(g, 0, 1) == pytest.approx(1.0)

    def test_structural_similarity_disjoint_neighborhoods(self):
        g = Graph(6, [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)])
        # Γ(0)={0,1,2,3}, Γ(1)={0,1,4,5} -> overlap {0,1}.
        assert structural_similarity(g, 0, 1) == pytest.approx(2 / 4)

    def test_weighted_similarity_in_range(self, medium_planted):
        graph, _ = medium_planted
        weights = {e: 1.5 for e in graph.edges()}
        for u, v in list(graph.edges())[:20]:
            s = structural_similarity(graph, u, v, weights)
            assert 0.0 <= s <= 1.0 + 1e-9

    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            scan(triangle, eps=0.0)
        with pytest.raises(ValueError):
            scan(triangle, mu=0)

    def test_clusters_disjoint(self, medium_planted):
        graph, _ = medium_planted
        result = scan(graph, eps=0.5, mu=3)
        seen = set()
        for cluster in result.clusters:
            for v in cluster:
                assert v not in seen
                seen.add(v)

    def test_hubs_outliers_cover_rest(self, medium_planted):
        graph, _ = medium_planted
        result = scan(graph, eps=0.5, mu=3)
        clustered = {v for c in result.clusters for v in c}
        rest = set(result.hubs) | set(result.outliers)
        assert clustered | rest == set(graph.nodes())
        assert not (clustered & rest)

    def test_recovers_caveman(self):
        graph, labels = caveman_relaxed(6, 8, rewire_p=0.05, seed=3)
        result = scan(graph, eps=0.5, mu=3)
        scores = score_clustering(result.clusters, truth_of(labels))
        assert scores["purity"] > 0.8

    def test_full_partition_helper(self, medium_planted):
        graph, _ = medium_planted
        result = scan(graph, eps=0.5, mu=3)
        assert is_partition(result.all_clusters_with_noise(), graph.n)


class TestAttractor:
    def test_jaccard_clique(self):
        g = complete_graph(4)
        assert jaccard_similarity(g, 0, 1) == pytest.approx(1.0)

    def test_jaccard_disjoint(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3)])
        # Γ(0)={0,1,2}, Γ(1)={0,1,3}: inter 2, union 4.
        assert jaccard_similarity(g, 0, 1) == pytest.approx(0.5)

    def test_distances_stay_in_unit_interval(self, small_planted):
        graph, _ = small_planted
        model = Attractor(graph, max_iterations=10)
        model.run()
        assert all(0.0 <= d <= 1.0 for d in model.distance.values())

    def test_separates_barbell(self):
        g = barbell_graph(6, bridge=1)
        clusters = attractor(g, max_iterations=50)
        lookup = {v: i for i, c in enumerate(clusters) for v in c}
        assert lookup[0] != lookup[11]

    def test_recovers_planted(self, medium_planted):
        graph, labels = medium_planted
        clusters = attractor(graph, max_iterations=30)
        scores = score_clustering(clusters, truth_of(labels))
        assert scores["nmi"] > 0.7

    def test_iteration_count_recorded(self, small_planted):
        graph, _ = small_planted
        model = Attractor(graph, max_iterations=5)
        model.run()
        assert 1 <= model.iterations_run <= 5

    def test_cohesion_validation(self, triangle):
        with pytest.raises(ValueError):
            Attractor(triangle, cohesion=2.0)


class TestDyna:
    def test_initializes_from_louvain(self, medium_planted):
        graph, _ = medium_planted
        model = Dyna(graph, lam=0.1, seed=0)
        assert is_partition(model.clusters(), graph.n)

    def test_step_decays_everything(self, medium_planted):
        graph, _ = medium_planted
        model = Dyna(graph, lam=0.5, seed=0)
        w0 = dict(model.weights)
        inactive = graph.edges()[5]
        model.step(2.0, [graph.edges()[0]])
        assert model.weights[inactive] == pytest.approx(w0[inactive] * math.exp(-1.0))
        assert model.last_scanned == graph.m  # the O(m) weakness

    def test_activation_boosts_edge(self, medium_planted):
        graph, _ = medium_planted
        model = Dyna(graph, lam=0.1, seed=0)
        e = graph.edges()[0]
        model.step(1.0, [e])
        assert model.weights[e] > 1.0

    def test_time_monotonicity_enforced(self, medium_planted):
        graph, _ = medium_planted
        model = Dyna(graph, lam=0.1, seed=0)
        model.step(3.0, [])
        with pytest.raises(ValueError):
            model.step(2.0, [])

    def test_activation_on_non_edge_rejected(self, triangle):
        model = Dyna(triangle, lam=0.1)
        with pytest.raises(ValueError):
            model.step(1.0, [(0, 5)])

    def test_repair_keeps_partition(self, medium_planted):
        graph, _ = medium_planted
        model = Dyna(graph, lam=0.1, seed=0)
        for t in range(1, 6):
            model.step(float(t), graph.edges()[:10])
            assert is_partition(model.clusters(), graph.n)


class TestLwep:
    def test_clusters_are_partition(self, small_planted):
        graph, _ = small_planted
        model = Lwep(graph, lam=0.1, top_k=4)
        assert is_partition(model.clusters(), graph.n)

    def test_step_updates_clusters(self, small_planted):
        graph, _ = small_planted
        model = Lwep(graph, lam=0.1, top_k=4)
        model.step(1.0, graph.edges()[:5])
        assert is_partition(model.clusters(), graph.n)

    def test_top_k_validation(self, triangle):
        with pytest.raises(ValueError):
            Lwep(triangle, top_k=0)

    def test_time_monotonicity(self, triangle):
        model = Lwep(triangle, lam=0.1)
        model.step(2.0, [])
        with pytest.raises(ValueError):
            model.step(1.0, [])

    def test_recovers_planted_roughly(self, medium_planted):
        graph, labels = medium_planted
        model = Lwep(graph, lam=0.1, top_k=5)
        scores = score_clustering(model.clusters(), truth_of(labels))
        assert scores["purity"] > 0.6


class TestSpectral:
    def test_returns_partition(self, medium_planted):
        graph, _ = medium_planted
        clusters = spectral_clustering(graph, 6, seed=0)
        assert is_partition(clusters, graph.n)

    def test_recovers_planted(self, medium_planted):
        graph, labels = medium_planted
        clusters = spectral_clustering(graph, len(set(labels)), seed=0)
        scores = score_clustering(clusters, truth_of(labels))
        assert scores["nmi"] > 0.8

    def test_weighted_splits_on_weights(self):
        # A 6-clique whose weights define two triangles.
        g = complete_graph(6)
        weights = {}
        for u, v in g.edges():
            same = (u < 3) == (v < 3)
            weights[(u, v)] = 10.0 if same else 0.01
        clusters = spectral_clustering(g, 2, weights, seed=0)
        lookup = {v: i for i, c in enumerate(clusters) for v in c}
        assert lookup[0] == lookup[1] == lookup[2]
        assert lookup[3] == lookup[4] == lookup[5]
        assert lookup[0] != lookup[3]

    def test_isolated_nodes_become_singletons(self):
        g = Graph(5, [(0, 1), (1, 2)])
        clusters = spectral_clustering(g, 2, seed=0)
        assert [3] in clusters and [4] in clusters

    def test_deterministic(self, medium_planted):
        graph, _ = medium_planted
        a = spectral_clustering(graph, 6, seed=1)
        b = spectral_clustering(graph, 6, seed=1)
        assert a == b

    def test_k_validation(self, triangle):
        with pytest.raises(ValueError):
            spectral_clustering(triangle, 0)

    def test_k_larger_than_n_clamped(self, triangle):
        clusters = spectral_clustering(triangle, 10, seed=0)
        assert is_partition(clusters, 3)
