"""The fault-injection subsystem and the resilience it exposes.

Covers, bottom-up:

* :class:`repro.faults.plan.FaultPlan` trigger semantics (count,
  probability, phase, max_fires) and determinism;
* the WAL's checksummed record format, its three corruption classes and
  each ``wal.append`` injector;
* checkpoint torn-write / bit-rot handling;
* the crash-between-append-and-apply regression (restart must equal the
  fault-free oracle bit-for-bit);
* the hardened :class:`~repro.service.client.ServiceClient`: typed
  connect errors, deterministic backoff, the circuit breaker, and the
  end-to-end exactly-once acceptance run against a live server with
  dropped connections and a mid-stream reset;
* server graceful degradation: overload shedding (typed
  ``RETRY_AFTER``), slow-reader eviction, the ``degraded`` flag.

The full injector × seed matrix lives in ``tests/chaos/`` behind the
``chaos`` marker; these tests stay tier-1 fast.
"""

from __future__ import annotations

import socket

import pytest

from repro.core.anc import ANCParams, make_engine
from repro.faults import (
    CATALOG,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    ServerThread,
    engine_signature,
    run_scenario,
    scenario_by_name,
)
from repro.faults.chaos import QUICK_PARAMS, SCENARIOS
from repro.graph.generators import planted_partition
from repro.service.client import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceConnectError,
    ServiceError,
    ServiceRetryAfter,
    ServiceTimeout,
)
from repro.service.server import ServerConfig
from repro.service.snapshots import (
    CheckpointCorruptError,
    CheckpointStore,
    WalCorruptError,
    WriteAheadLog,
    apply_activations,
    recover_engine,
)
from repro.core.activation import Activation
from repro.workloads.streams import community_biased_stream


def make_workload(seed=3, *, nodes=30, timestamps=8):
    graph, labels = planted_partition(nodes, 3, p_in=0.5, p_out=0.05, seed=seed + 7)
    stream = community_biased_stream(
        graph, labels, timestamps=timestamps, fraction=0.1, seed=seed
    )
    return graph, list(stream)


# ----------------------------------------------------------------------
# FaultPlan triggers
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_at_count_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec("wal.append", "torn-tail", at_count=3)])
        actions = [plan.hit("wal.append") for _ in range(6)]
        assert [a is not None for a in actions] == [
            False, False, True, False, False, False
        ]
        assert plan.hits("wal.append") == 6
        assert plan.fired == [{"site": "wal.append", "kind": "torn-tail", "hit": 3}]

    def test_max_fires_bounds_probability_spec(self):
        plan = FaultPlan(
            [FaultSpec("server.request", "delay", probability=1.0, max_fires=2)],
            seed=1,
        )
        fired = sum(plan.hit("server.request") is not None for _ in range(10))
        assert fired == 2
        assert not plan.armed

    def test_probability_is_deterministic_per_seed(self):
        def pattern(seed):
            plan = FaultPlan(
                [
                    FaultSpec(
                        "server.request", "delay",
                        probability=0.5, max_fires=100,
                    )
                ],
                seed=seed,
            )
            return [plan.hit("server.request") is not None for _ in range(40)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # 1-in-2^40 flake if RNGs collide

    def test_phase_gating(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    "index.load", "delay",
                    probability=1.0, phase="recovery",
                )
            ]
        )
        plan.set_phase("live")
        assert plan.hit("index.load") is None
        plan.set_phase("recovery")
        action = plan.hit("index.load")
        assert action is not None and action.kind == "delay"

    def test_site_mismatch_never_fires(self):
        plan = FaultPlan([FaultSpec("wal.append", "crash", at_count=1)])
        assert plan.hit("checkpoint.write") is None
        assert plan.armed

    def test_report_shape(self):
        plan = FaultPlan([FaultSpec("wal.append", "crash", at_count=1)], seed=9)
        plan.hit("wal.append", seq=0)
        report = plan.report()
        assert report["seed"] == 9
        assert report["hits"] == {"wal.append": 1}
        assert report["fired"] == [
            {"site": "wal.append", "kind": "crash", "hit": 1, "seq": 0}
        ]

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec("wal.append", "crash")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec("wal.append", "crash", at_count=1, probability=0.5)
        with pytest.raises(ValueError, match="at_count"):
            FaultSpec("wal.append", "crash", at_count=0)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("wal.append", "crash", probability=1.5)
        with pytest.raises(ValueError, match="does not support kind"):
            FaultPlan([FaultSpec("wal.append", "no-such-kind", at_count=1)])
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan([FaultSpec("no.such.site", "crash", at_count=1)])

    def test_action_seconds_narrowing(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    "server.request", "delay",
                    at_count=1, args={"seconds": 0.25},
                ),
                FaultSpec(
                    "server.request", "delay",
                    at_count=2, args={"seconds": "bogus"},
                ),
            ]
        )
        assert plan.hit("server.request").seconds() == 0.25
        assert plan.hit("server.request").seconds(0.1) == 0.1

    def test_catalog_covers_every_scenario_site(self):
        for scenario in SCENARIOS:
            for spec in scenario.specs(0, 200):
                assert spec.site in CATALOG
                assert spec.kind in CATALOG[spec.site]


# ----------------------------------------------------------------------
# WAL format and injectors
# ----------------------------------------------------------------------

class TestWalFormat:
    def acts(self, graph, stream, n):
        return stream[:n]

    def test_round_trip_checksummed(self, tmp_path):
        graph, stream = make_workload()
        wal = WriteAheadLog(tmp_path / "wal.log")
        for act in stream[:10]:
            wal.append(act)
        wal.close()
        assert list(WriteAheadLog.replay(tmp_path / "wal.log")) == stream[:10]

    def test_legacy_three_field_lines_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("0 1 1.0\n0 2 2.0\n")
        acts = list(WriteAheadLog.replay(path))
        assert acts == [Activation(0, 1, 1.0), Activation(0, 2, 2.0)]

    def test_mid_file_garbage_is_typed(self, tmp_path):
        graph, stream = make_workload()
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for act in stream[:4]:
            wal.append(act)
        wal.close()
        lines = path.read_text().splitlines()
        lines[1] = "garbage line"
        path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(WalCorruptError, match="corrupt WAL line 1"):
            list(WriteAheadLog.replay(path))

    def test_sequence_gap_is_typed(self, tmp_path):
        graph, stream = make_workload()
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for act in stream[:5]:
            wal.append(act)
        wal.close()
        lines = path.read_text().splitlines()
        del lines[2]  # a lost page write inside the acknowledged stream
        path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(WalCorruptError, match="sequence gap"):
            list(WriteAheadLog.replay(path))

    @pytest.mark.parametrize("kind", ["torn-tail", "short-write", "bit-flip"])
    def test_torn_tail_kinds_crash_then_repair(self, tmp_path, kind):
        graph, stream = make_workload()
        path = tmp_path / "wal.log"
        plan = FaultPlan([FaultSpec("wal.append", kind, at_count=4)])
        wal = WriteAheadLog(path, faults=plan)
        with pytest.raises(InjectedCrash):
            for act in stream[:6]:
                wal.append(act)
        wal.close()
        # Replay of the damaged file silently drops only the torn tail...
        assert list(WriteAheadLog.replay(path)) == stream[:3]
        # ...and reopening repairs the file so appends continue the seq.
        wal2 = WriteAheadLog(path)
        assert wal2.entries == 3
        wal2.append(stream[3])
        wal2.close()
        assert list(WriteAheadLog.replay(path)) == stream[:4]

    def test_fsync_loss_surfaces_as_gap(self, tmp_path):
        graph, stream = make_workload()
        path = tmp_path / "wal.log"
        plan = FaultPlan([FaultSpec("wal.append", "fsync-loss", at_count=3)])
        wal = WriteAheadLog(path, faults=plan)
        for act in stream[:5]:  # append 3 is acked but never written
            wal.append(act)
        wal.close()
        with pytest.raises(WalCorruptError, match="sequence gap"):
            list(WriteAheadLog.replay(path))

    def test_crash_kind_keeps_record(self, tmp_path):
        graph, stream = make_workload()
        path = tmp_path / "wal.log"
        plan = FaultPlan([FaultSpec("wal.append", "crash", at_count=3)])
        wal = WriteAheadLog(path, faults=plan)
        with pytest.raises(InjectedCrash):
            for act in stream[:5]:
                wal.append(act)
        wal.close()
        # The record hit the disk before the simulated kill -9.
        assert list(WriteAheadLog.replay(path)) == stream[:3]

    def test_disarmed_wal_has_no_plan(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        assert wal.faults is None
        wal.close()


# ----------------------------------------------------------------------
# Checkpoint corruption classes
# ----------------------------------------------------------------------

class TestCheckpointFaults:
    def run_to_checkpoint(self, tmp_path, plan=None):
        graph, stream = make_workload()
        store = CheckpointStore(tmp_path / "data", faults=plan)
        wal = WriteAheadLog(store.wal_path, faults=plan)
        engine = make_engine("ANCO", graph, QUICK_PARAMS)
        for act in stream[:30]:
            wal.append(act)
            apply_activations(engine, [act])
        wal.close()
        return graph, stream, store, engine

    def test_skip_manifest_checkpoint_is_ignored(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec("checkpoint.write", "skip-manifest", at_count=1)]
        )
        graph, stream, store, engine = self.run_to_checkpoint(tmp_path, plan)
        with pytest.raises(InjectedCrash):
            store.write_checkpoint(engine)
        assert store.latest_checkpoint() is None
        recovered, replayed = recover_engine(graph, store, params=QUICK_PARAMS)
        assert replayed == 30
        assert engine_signature(recovered) == engine_signature(engine)

    def test_bit_rot_fails_the_checksum(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec("checkpoint.write", "corrupt-engine", at_count=1)]
        )
        graph, stream, store, engine = self.run_to_checkpoint(tmp_path, plan)
        store.write_checkpoint(engine)  # completes: rot happens post-fsync
        assert store.latest_checkpoint() is not None
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            recover_engine(graph, store, params=QUICK_PARAMS)

    def test_index_bit_rot_fails_the_checksum(self, tmp_path):
        graph, stream, store, engine = self.run_to_checkpoint(tmp_path)
        path = store.write_checkpoint(engine)
        index = path / "index.json"
        index.write_text(index.read_text() + " ")
        with pytest.raises(CheckpointCorruptError, match="index.json"):
            recover_engine(graph, store, params=QUICK_PARAMS)

    def test_crash_between_append_and_apply(self, tmp_path):
        """Satellite regression: kill -9 after WAL append, before apply.

        The restarted engine replays the orphan record the crashed
        process never applied, the "client" resends what was never
        acknowledged, and the result equals the fault-free oracle
        bit-for-bit.
        """
        graph, stream = make_workload()
        oracle = make_engine("ANCO", graph, QUICK_PARAMS)
        apply_activations(oracle, stream)

        plan = FaultPlan([FaultSpec("wal.append", "crash", at_count=21)])
        store = CheckpointStore(tmp_path / "data", faults=plan)
        wal = WriteAheadLog(store.wal_path, faults=plan)
        engine = make_engine("ANCO", graph, QUICK_PARAMS)
        applied = 0
        with pytest.raises(InjectedCrash):
            for act in stream:
                wal.append(act)  # raises on act 21: appended, never applied
                apply_activations(engine, [act])
                applied += 1
        wal.close()
        assert applied == 20
        del engine  # kill -9: in-memory state is gone

        recovered, replayed = recover_engine(graph, store, params=QUICK_PARAMS)
        assert replayed == 21  # includes the orphan append
        resend = stream[recovered.activations_processed:]
        wal2 = WriteAheadLog(store.wal_path)
        for act in resend:
            wal2.append(act)
            apply_activations(recovered, [act])
        wal2.close()
        assert engine_signature(recovered) == engine_signature(oracle)


# ----------------------------------------------------------------------
# Client hardening (typed errors, backoff, breaker)
# ----------------------------------------------------------------------

def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestClientTypedErrors:
    def test_refused_connection_is_typed(self):
        port = free_port()
        with pytest.raises(ServiceConnectError, match="cannot connect"):
            ServiceClient(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=2, base_delay=0.001),
            )

    def test_connect_timeout_is_typed(self, monkeypatch):
        def fake_create_connection(address, timeout=None):
            raise socket.timeout("timed out")

        monkeypatch.setattr(socket, "create_connection", fake_create_connection)
        with pytest.raises(ServiceTimeout, match="timed out"):
            ServiceClient("127.0.0.1", 1, timeout=0.01)

    def test_typed_errors_are_service_errors(self):
        assert issubclass(ServiceConnectError, ServiceError)
        assert issubclass(ServiceTimeout, ServiceError)
        assert issubclass(ServiceRetryAfter, ServiceError)
        assert ServiceConnectError("x").code == "CONNECT"
        assert ServiceTimeout("x").code == "TIMEOUT"


class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        import random as _random

        policy = RetryPolicy(
            attempts=5, base_delay=0.1, factor=2.0, max_delay=0.5, jitter=0.25
        )
        a = [policy.delay(k, _random.Random(3)) for k in range(4)]
        b = [policy.delay(k, _random.Random(3)) for k in range(4)]
        assert a == b
        for k, d in enumerate(a):
            raw = min(0.1 * 2.0 ** k, 0.5)
            assert raw * 0.75 <= d <= raw * 1.25

    def test_no_jitter_is_exact(self):
        import random as _random

        policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=0.3, jitter=0.0)
        rng = _random.Random(0)
        assert [policy.delay(k, rng) for k in range(4)] == [0.1, 0.2, 0.3, 0.3]


class TestCircuitBreaker:
    def test_transitions_with_fake_clock(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown=10.0, clock=lambda: now[0]
        )
        assert breaker.allow() and breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()  # still under threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 1
        assert not breaker.allow()  # cooling down
        now[0] = 10.5
        assert breaker.allow()  # probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # probe failed: straight back to open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 2
        now[0] = 21.5
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0


# ----------------------------------------------------------------------
# End-to-end resilience against a live server
# ----------------------------------------------------------------------

def serve(graph, plan=None, **config_kwargs):
    config = ServerConfig(
        port=0, engine="anco", metrics_interval=0.0, faults=plan, **config_kwargs
    )
    return ServerThread(graph, config=config, params=QUICK_PARAMS)


class TestEndToEndResilience:
    def test_exactly_once_through_resets(self):
        """The acceptance run: the server drops the client's first two
        connections and resets one connection mid-stream; retry +
        seq-keyed resend still ingests the stream exactly once, and the
        breaker/retry counters surface in ``metrics_text()``."""
        graph, stream = make_workload(5)
        oracle = make_engine("ANCO", graph, QUICK_PARAMS)
        apply_activations(oracle, stream)

        plan = FaultPlan(
            [
                FaultSpec("server.accept", "reset", at_count=1),
                FaultSpec("server.accept", "reset", at_count=2),
                FaultSpec("server.request", "reset", at_count=2),
            ]
        )
        with serve(graph, plan) as handle:
            client = ServiceClient(
                handle.host, handle.port, timeout=5.0,
                retry=RetryPolicy(attempts=8, base_delay=0.01, max_delay=0.1),
            )
            try:
                for start in range(0, len(stream), 20):
                    chunk = stream[start:start + 20]
                    client.ingest_batch([(a.u, a.v, a.t) for a in chunk])
                assert client.sync() == len(stream)
                text = client.metrics_text()
            finally:
                client.close()
            assert client.retries >= 1  # both accept resets + the request reset
            signature = engine_signature(handle.server.host.engine)
        assert signature == engine_signature(oracle)
        assert "anc_client_retries_total" in text
        assert "anc_client_breaker_state" in text
        retries = float(
            next(
                line.split()[1]
                for line in text.splitlines()
                if line.startswith("anc_client_retries_total ")
            )
        )
        assert retries >= 1.0
        assert len(plan.fired) == 3

    def test_overload_shed_is_typed_retry_after(self):
        graph, stream = make_workload(6)
        plan = FaultPlan(
            [FaultSpec("ingest.flush", "delay", at_count=1, args={"seconds": 0.4})]
        )
        with serve(
            graph, plan, batch_size=4, max_latency=0.005, shed_watermark=8
        ) as handle:
            client = ServiceClient(
                handle.host, handle.port, timeout=5.0,
                retry=RetryPolicy(attempts=1),  # surface the shed, don't retry
            )
            try:
                with pytest.raises(ServiceRetryAfter) as excinfo:
                    client.ingest_batch([(a.u, a.v, a.t) for a in stream[:60]])
                assert excinfo.value.retry_after > 0.0
                assert excinfo.value.code == "RETRY_AFTER"
                stats = client.stats()
                assert stats["degraded"] is True
            finally:
                client.close()
            counters = handle.server.metrics.snapshot(rate_key=None)["counters"]
            assert counters["ingest_shed"] >= 1

    def test_shed_recovers_with_retrying_client(self):
        graph, stream = make_workload(7)
        oracle = make_engine("ANCO", graph, QUICK_PARAMS)
        apply_activations(oracle, stream)
        plan = FaultPlan(
            [FaultSpec("ingest.flush", "delay", at_count=1, args={"seconds": 0.3})]
        )
        with serve(
            graph, plan, batch_size=8, max_latency=0.005, shed_watermark=12
        ) as handle:
            client = ServiceClient(
                handle.host, handle.port, timeout=5.0,
                retry=RetryPolicy(attempts=16, base_delay=0.02, max_delay=0.25),
            )
            try:
                for start in range(0, len(stream), 25):
                    chunk = stream[start:start + 25]
                    client.ingest_batch([(a.u, a.v, a.t) for a in chunk])
                assert client.sync() == len(stream)
            finally:
                client.close()
            assert engine_signature(handle.server.host.engine) == engine_signature(
                oracle
            )

    def test_slow_reader_eviction(self):
        graph, stream = make_workload(8)
        plan = FaultPlan(
            [FaultSpec("server.send", "stall", at_count=1, args={"seconds": 5.0})]
        )
        with serve(graph, plan, write_timeout=0.1) as handle:
            client = ServiceClient(
                handle.host, handle.port, timeout=5.0,
                retry=RetryPolicy(attempts=6, base_delay=0.01, max_delay=0.1),
            )
            try:
                # First response stalls; the server evicts us, the client
                # reconnects and retries the same (idempotent) request.
                assert client.ping()["applied"] == 0
                stats = client.stats()
            finally:
                client.close()
            counters = handle.server.metrics.snapshot(rate_key=None)["counters"]
            assert counters["slow_reader_evictions"] == 1
            assert stats["degraded"] is True

    def test_duplicate_key_is_exactly_once(self):
        graph, stream = make_workload(9)
        with serve(graph) as handle:
            client = ServiceClient(handle.host, handle.port, timeout=5.0)
            try:
                items = [(a.u, a.v, a.t) for a in stream[:15]]
                client.ingest_batch(items, key="dup-1")
                client.ingest_batch(items, key="dup-1")  # manual resend
                assert client.sync() == 15
            finally:
                client.close()
            counters = handle.server.metrics.snapshot(rate_key=None)["counters"]
            assert counters["ingest_dedup_hits"] == 1

    def test_degraded_flag_clears(self):
        graph, _ = make_workload(10)
        with serve(graph, degraded_hold=0.0) as handle:
            client = ServiceClient(handle.host, handle.port, timeout=5.0)
            try:
                assert client.stats()["degraded"] is False
            finally:
                client.close()


# ----------------------------------------------------------------------
# Scenario plumbing (the matrix itself runs under -m chaos)
# ----------------------------------------------------------------------

class TestScenarioPlumbing:
    def test_scenario_by_name_round_trips(self):
        for scenario in SCENARIOS:
            assert scenario_by_name(scenario.name) is scenario
        with pytest.raises(KeyError, match="unknown chaos scenario"):
            scenario_by_name("no-such-scenario")

    def test_one_pipeline_cell_inline(self, tmp_path):
        result = run_scenario("wal-crash-after-append", 0, tmp_path)
        assert result.status == "recovered"
        assert result.ok and not result.silent_divergence
        assert result.injected and result.injected[0]["kind"] == "crash"
