"""Unit tests for even/power clustering, zooming and local queries (§V-B)."""

import math

import pytest

from repro.graph.generators import barbell_graph
from repro.index.clustering import (
    ClusterQueryEngine,
    even_clustering,
    local_cluster,
    node_rank_order,
    power_clustering,
)
from repro.index.pyramid import PyramidIndex
from repro.index.voting import VoteTable, voted_adjacency, voted_edges


@pytest.fixture
def barbell_index():
    graph = barbell_graph(6, bridge=1)
    # Bridge edge is heavy (dissimilar); intra-clique edges light.
    weights = {}
    for u, v in graph.edges():
        cross = (u < 6) != (v < 6)
        weights[(u, v)] = 10.0 if cross else 1.0
    return PyramidIndex(graph, weights, k=4, seed=1)


@pytest.fixture
def planted_index(medium_planted):
    graph, labels = medium_planted
    weights = {}
    for u, v in graph.edges():
        weights[(u, v)] = 1.0 if labels[u] == labels[v] else 8.0
    return PyramidIndex(graph, weights, k=4, seed=2), labels


def is_partition(clusters, n):
    seen = sorted(v for c in clusters for v in c)
    return seen == list(range(n))


class TestNodeRankOrder:
    def test_high_degree_first(self, barbell_index):
        order = node_rank_order(barbell_index.graph)
        degrees = [barbell_index.graph.degree(v) for v in order]
        assert degrees == sorted(degrees, reverse=True)

    def test_ties_broken_by_id(self):
        graph = barbell_graph(4, bridge=1)
        order = node_rank_order(graph)
        same_degree = [v for v in order if graph.degree(v) == graph.degree(order[0])]
        assert same_degree == sorted(same_degree)


class TestEvenClustering:
    def test_is_partition(self, barbell_index):
        for level in range(1, barbell_index.num_levels + 1):
            clusters = even_clustering(barbell_index, level)
            assert is_partition(clusters, barbell_index.graph.n)

    def test_level1_is_connected_components(self, barbell_index):
        clusters = even_clustering(barbell_index, 1)
        assert len(clusters) == 1  # the graph is connected

    def test_separates_barbell_at_some_level(self, barbell_index):
        separated = False
        for level in range(1, barbell_index.num_levels + 1):
            clusters = even_clustering(barbell_index, level)
            lookup = {v: i for i, c in enumerate(clusters) for v in c}
            if lookup[0] != lookup[11]:
                separated = True
        assert separated


class TestPowerClustering:
    def test_is_partition(self, barbell_index):
        for level in range(1, barbell_index.num_levels + 1):
            clusters = power_clustering(barbell_index, level)
            assert is_partition(clusters, barbell_index.graph.n)

    def test_no_coarser_than_even(self, barbell_index):
        """Power clusters subdivide even clusters (they never merge
        across voted components)."""
        for level in range(1, barbell_index.num_levels + 1):
            even = even_clustering(barbell_index, level)
            power = power_clustering(barbell_index, level)
            even_of = {v: i for i, c in enumerate(even) for v in c}
            for cluster in power:
                comps = {even_of[v] for v in cluster}
                assert len(comps) == 1

    def test_recovers_planted_communities(self, planted_index):
        index, labels = planted_index
        engine = ClusterQueryEngine(index)
        # At some granularity, clustering should align well with truth.
        from repro.evalm import score_clustering

        truth = {v: labels[v] for v in index.graph.nodes()}
        best_nmi = 0.0
        for level in range(1, index.num_levels + 1):
            clusters = power_clustering(index, level)
            best_nmi = max(best_nmi, score_clustering(clusters, truth)["nmi"])
        assert best_nmi > 0.6


class TestLocalCluster:
    def test_matches_even_component(self, barbell_index):
        for level in (2, barbell_index.num_levels):
            clusters = even_clustering(barbell_index, level)
            lookup = {v: c for c in clusters for v in c}
            for v in (0, 7, 11):
                assert local_cluster(barbell_index, v, level) == lookup[v]

    def test_contains_query_node(self, planted_index):
        index, _ = planted_index
        for v in (0, 10, 50):
            cluster = local_cluster(index, v, index.num_levels)
            assert v in cluster


class TestVoting:
    def test_voted_edges_subset_of_edges(self, barbell_index):
        for level in range(1, barbell_index.num_levels + 1):
            voted = voted_edges(barbell_index, level)
            assert set(voted) <= set(barbell_index.graph.edges())

    def test_voted_adjacency_symmetric(self, barbell_index):
        adj = voted_adjacency(barbell_index, 2)
        for u in barbell_index.graph.nodes():
            for v in adj[u]:
                assert u in adj[v]

    def test_vote_table_matches_direct(self, barbell_index):
        table = VoteTable(barbell_index)
        for level in range(1, barbell_index.num_levels + 1):
            for u, v in barbell_index.graph.edges():
                assert table.vote(u, v, level) == barbell_index.same_cluster_vote(
                    u, v, level
                )

    def test_vote_table_refresh_after_update(self, barbell_index):
        table = VoteTable(barbell_index)
        # Make the bridge cheap: the two bells should merge at fine levels.
        bridge = next(
            e for e in barbell_index.graph.edges() if (e[0] < 6) != (e[1] < 6)
        )
        barbell_index.update_edge_weight(*bridge, 0.01)
        table.refresh_around(barbell_index.graph.nodes())
        for level in range(1, barbell_index.num_levels + 1):
            for u, v in barbell_index.graph.edges():
                assert table.vote(u, v, level) == barbell_index.same_cluster_vote(
                    u, v, level
                )


class TestQueryEngine:
    def test_sqrt_n_level_has_enough_seeds(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        level = engine.sqrt_n_level()
        assert 2 ** (level - 1) >= math.sqrt(index.graph.n)

    def test_zoom_monotone_cluster_counts(self, planted_index):
        """Zooming in never decreases the number of clusters (on average
        granularity grows with level since seed count doubles)."""
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        counts = [len(engine.clusters(level)) for level in range(1, engine.num_levels + 1)]
        assert counts[0] <= counts[-1]

    def test_zoom_bounds(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        assert engine.zoom_out(1) == 1
        assert engine.zoom_in(engine.num_levels) == engine.num_levels
        assert engine.zoom_in(1) == 2

    def test_cluster_of_consistent_with_even_method(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index, method="even")
        level = engine.sqrt_n_level()
        clusters = engine.clusters(level)
        lookup = {v: c for c in clusters for v in c}
        for v in (0, 33, 99):
            assert engine.cluster_of(v, level) == lookup[v]

    def test_smallest_cluster_at_max_level(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        level, cluster = engine.smallest_cluster_of(0)
        assert level == engine.num_levels
        assert 0 in cluster

    def test_clusters_closest_to_target(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        level, clusters = engine.clusters_closest_to(6, min_size=3)
        assert 1 <= level <= engine.num_levels
        assert is_partition(clusters, index.graph.n)

    def test_invalid_method_rejected(self, planted_index):
        index, _ = planted_index
        with pytest.raises(ValueError):
            ClusterQueryEngine(index, method="magic")

    def test_cluster_sizes_sorted(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        sizes = engine.cluster_sizes()
        assert sizes == sorted(sizes, reverse=True)


class TestZoomSession:
    def test_starts_at_smallest(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        session = engine.zoom_session(5)
        assert session.level == engine.num_levels
        assert 5 in session.cluster
        assert session.at_finest

    def test_starts_at_sqrt(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        session = engine.zoom_session(5, start="sqrt")
        assert session.level == engine.sqrt_n_level()

    def test_invalid_start_rejected(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        with pytest.raises(ValueError):
            engine.zoom_session(5, start="middle")

    def test_unknown_node_rejected(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        with pytest.raises(ValueError):
            engine.zoom_session(99999)

    def test_repetitive_zoom_out_to_coarsest(self, planted_index):
        """Problem 1: smallest cluster, then repetitive zoom-out."""
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        session = engine.zoom_session(7)
        sizes = [len(session.cluster)]
        while not session.at_coarsest:
            session.zoom_out()
            assert 7 in session.cluster
            sizes.append(len(session.cluster))
        assert session.level == 1
        assert sizes[-1] >= sizes[0]

    def test_zoom_in_clamps_at_finest(self, planted_index):
        index, _ = planted_index
        engine = ClusterQueryEngine(index)
        session = engine.zoom_session(7)
        before = session.cluster
        session.zoom_in()  # already finest: no level change
        assert session.level == engine.num_levels
        assert session.cluster == before

    def test_session_tracks_index_updates(self, barbell_index):
        engine = ClusterQueryEngine(barbell_index)
        session = engine.zoom_session(0, start="sqrt")
        bridge = next(
            e for e in barbell_index.graph.edges() if (e[0] < 6) != (e[1] < 6)
        )
        barbell_index.update_edge_weight(*bridge, 0.001)
        refreshed = session.refresh()
        assert refreshed == engine.cluster_of(0, session.level)
