"""Unit tests for VoronoiPartition construction and invariants."""

import pytest

from repro.graph.graph import Graph
from repro.graph.traversal import INF, multi_source_dijkstra
from repro.index.voronoi import VoronoiPartition


def unit_weight(u: int, v: int) -> float:
    return 1.0


class TestConstruction:
    def test_single_seed_owns_component(self, grid_5x5):
        part = VoronoiPartition(grid_5x5, [12], unit_weight)
        assert all(s == 12 for s in part.seed)
        assert part.dist[12] == 0.0
        assert part.dist[0] == 4.0  # Manhattan to center

    def test_matches_multi_source_dijkstra(self, medium_planted):
        graph, _ = medium_planted
        seeds = [0, 40, 90, 120]
        part = VoronoiPartition(graph, seeds, unit_weight)
        dist, seed, _ = multi_source_dijkstra(graph, seeds, unit_weight)
        assert part.dist == dist
        assert part.seed == seed

    def test_duplicate_seeds_rejected(self, triangle):
        with pytest.raises(ValueError):
            VoronoiPartition(triangle, [0, 0], unit_weight)

    def test_invalid_seed_rejected(self, triangle):
        with pytest.raises(ValueError):
            VoronoiPartition(triangle, [7], unit_weight)

    def test_empty_seeds_rejected(self, triangle):
        with pytest.raises(ValueError):
            VoronoiPartition(triangle, [], unit_weight)

    def test_cells_partition_reachable_nodes(self, grid_5x5):
        part = VoronoiPartition(grid_5x5, [0, 24], unit_weight)
        cells = part.cells()
        all_members = sorted(v for cell in cells.values() for v in cell)
        assert all_members == list(range(25))

    def test_unreachable_nodes_unassigned(self):
        g = Graph(5, [(0, 1), (2, 3)])
        part = VoronoiPartition(g, [0], unit_weight)
        assert part.seed[2] == -1
        assert part.dist[3] == INF
        assert 2 not in {v for cell in part.cells().values() for v in cell}

    def test_consistency_check_passes(self, medium_planted):
        graph, _ = medium_planted
        part = VoronoiPartition(graph, [0, 10, 20], unit_weight)
        part.check_consistency()


class TestForest:
    def test_children_inverse_of_parent(self, grid_5x5):
        part = VoronoiPartition(grid_5x5, [0, 24], unit_weight)
        for v in grid_5x5.nodes():
            p = part.parent[v]
            if p >= 0:
                assert v in part.children(p)

    def test_subtree_of_seed_is_cell(self, grid_5x5):
        part = VoronoiPartition(grid_5x5, [0, 24], unit_weight)
        cells = part.cells()
        assert sorted(part.subtree(0)) == cells[0]
        assert sorted(part.subtree(24)) == cells[24]

    def test_subtree_of_leaf_is_singleton(self, path10):
        part = VoronoiPartition(path10, [0], unit_weight)
        assert part.subtree(9) == [9]

    def test_memory_cost_positive_and_monotone(self, grid_5x5, path10):
        big = VoronoiPartition(grid_5x5, [0], unit_weight)
        small = VoronoiPartition(path10, [0], unit_weight)
        assert big.memory_cost() > small.memory_cost() > 0


class TestProbe:
    def test_probe_improves_through_better_neighbor(self, path10):
        part = VoronoiPartition(path10, [0], unit_weight)
        # Artificially worsen node 5 and probe via 4.
        part.dist[5] = 100.0
        assert part.probe(5, 4) is True
        assert part.dist[5] == 5.0
        assert part.parent[5] == 4

    def test_probe_rejects_worse_route(self, path10):
        part = VoronoiPartition(path10, [0], unit_weight)
        assert part.probe(4, 5) is False  # via 5 would be 6 > 4

    def test_probe_from_unreached_neighbor_fails(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        part = VoronoiPartition(g, [0], unit_weight)
        part.seed[3] = -1
        part.dist[3] = INF
        assert part.probe(2, 3) is False
