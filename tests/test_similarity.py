"""Unit tests for active similarity, active neighbors and node roles."""


import pytest

from repro.core.decay import Activeness, DecayClock
from repro.core.similarity import ActiveSimilarity, NodeRole, naive_sigma
from repro.graph.graph import Graph


def make_similarity(graph, *, lam=0.1, eps=0.3, mu=2, uniform=1.0):
    clock = DecayClock(lam)
    initial = {e: uniform for e in graph.edges()}
    act = Activeness(clock, initial=initial)
    sim = ActiveSimilarity(graph, act, eps=eps, mu=mu)
    return clock, act, sim


class TestSigma:
    def test_triangle_uniform(self, triangle):
        _, _, sim = make_similarity(triangle)
        # num = a(0,2)+a(1,2) = 2; denom = (a(0,1)+a(0,2)) + (a(1,0)+a(1,2)) = 4
        assert sim.sigma(0, 1) == pytest.approx(0.5)

    def test_no_common_neighbors_is_zero(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3)])
        _, _, sim = make_similarity(g)
        assert sim.sigma(0, 1) == 0.0

    def test_zero_strength_is_zero(self, triangle):
        clock = DecayClock(0.1)
        act = Activeness(clock)  # no initial activeness at all
        sim = ActiveSimilarity(triangle, act, eps=0.3, mu=2)
        assert sim.sigma(0, 1) == 0.0

    def test_matches_naive_reference(self, medium_planted):
        graph, _ = medium_planted
        clock, act, sim = make_similarity(graph)
        # Activate a few edges to break uniformity.
        for i, e in enumerate(list(graph.edges())[:20]):
            act.on_activation(e[0], e[1], float(i) * 0.5)
            sim.on_activation_delta(e[0], e[1], 1.0 / clock.global_factor())
        actual = {e: act.value(*e) for e in graph.edges()}
        for u, v in list(graph.edges())[:40]:
            assert sim.sigma(u, v) == pytest.approx(
                naive_sigma(graph, actual, u, v), rel=1e-9
            )

    def test_neum_invariance_under_decay(self, square_with_diagonal):
        """Lemma 3: σ computed from anchored values is time-invariant
        when no activation arrives (the global factor cancels)."""
        clock, act, sim = make_similarity(square_with_diagonal)
        before = sim.sigma(0, 2)
        clock.advance(50.0)
        assert sim.sigma(0, 2) == pytest.approx(before)

    def test_activation_boosts_similarity_via_common_neighbor(self):
        # Path 0-1-2 plus edge 0-2: activating (1,2) raises sigma(0,2)'s
        # numerator through common neighbor 1.
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        clock, act, sim = make_similarity(g)
        before = sim.sigma(0, 2)
        act.on_activation(1, 2, 1.0)
        sim.on_activation_delta(1, 2, 1.0 / clock.global_factor())
        after = sim.sigma(0, 2)
        assert after > before


class TestStrengths:
    def test_initial_strengths(self, triangle):
        _, _, sim = make_similarity(triangle)
        assert sim.strength(0) == pytest.approx(2.0)

    def test_incremental_strength_updates(self, triangle):
        clock, act, sim = make_similarity(triangle)
        _, delta = act.on_activation(0, 1, 1.0)
        sim.on_activation_delta(0, 1, delta)
        assert sim.strength(0) == pytest.approx(2.0 + delta)
        assert sim.strength(1) == pytest.approx(2.0 + delta)
        assert sim.strength(2) == pytest.approx(2.0)

    def test_rescale_scales_strengths(self, triangle):
        clock, act, sim = make_similarity(triangle)
        clock.add_rescale_listener(sim.on_rescale)
        clock.advance(3.0)
        g = clock.global_factor()
        clock.rescale()
        assert sim.strength(0) == pytest.approx(2.0 * g)
        # σ stays the same across the rescale (NeuM).
        assert sim.sigma(0, 1) == pytest.approx(0.5)


class TestActiveNeighbors:
    def test_threshold_filters(self, triangle):
        _, _, sim = make_similarity(triangle, eps=0.4)
        assert sim.active_neighbors(0) == [1, 2]
        _, _, sim2 = make_similarity(triangle, eps=0.6)
        assert sim2.active_neighbors(0) == []

    def test_count_matches_list(self, medium_planted):
        graph, _ = medium_planted
        _, _, sim = make_similarity(graph, eps=0.2)
        for v in list(graph.nodes())[:30]:
            assert sim.active_neighbor_count(v) == len(sim.active_neighbors(v))


class TestRoles:
    def test_periphery_by_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        _, _, sim = make_similarity(g, mu=2)
        # Leaves have degree 1 < mu.
        for leaf in (1, 2, 3):
            assert sim.role(leaf) is NodeRole.PERIPHERY

    def test_core_in_clique(self):
        g = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        _, _, sim = make_similarity(g, eps=0.3, mu=2)
        assert all(sim.role(v) is NodeRole.CORE for v in g.nodes())

    def test_pcore_with_inactive_neighbors(self):
        # Star center has degree >= mu but zero similarity (no triangles).
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        _, _, sim = make_similarity(g, eps=0.3, mu=2)
        assert sim.role(0) is NodeRole.P_CORE

    def test_roles_partition_vertex_set(self, medium_planted):
        graph, _ = medium_planted
        _, _, sim = make_similarity(graph, eps=0.3, mu=3)
        counts = sim.role_counts()
        assert sum(counts.values()) == graph.n

    def test_parameter_validation(self, triangle):
        clock = DecayClock(0.1)
        act = Activeness(clock)
        with pytest.raises(ValueError):
            ActiveSimilarity(triangle, act, eps=1.5, mu=2)
        with pytest.raises(ValueError):
            ActiveSimilarity(triangle, act, eps=0.3, mu=0)
