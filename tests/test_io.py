"""Tests for edge-list I/O."""

import io

import pytest

from repro.graph.io import (
    read_edge_list,
    read_temporal_edge_list,
    write_edge_list,
    write_temporal_edge_list,
)
from repro.core.activation import Activation, ActivationStream


class TestReadEdgeList:
    def test_basic(self):
        text = io.StringIO("a b\nb c\n")
        graph, names = read_edge_list(text)
        assert graph.n == 3 and graph.m == 2
        assert names == ["a", "b", "c"]

    def test_comments_and_blanks_skipped(self):
        text = io.StringIO("# header\n\n% other\n1 2\n")
        graph, _ = read_edge_list(text)
        assert graph.m == 1

    def test_self_loops_dropped(self):
        text = io.StringIO("1 1\n1 2\n")
        graph, _ = read_edge_list(text)
        assert graph.m == 1

    def test_duplicates_collapse(self):
        text = io.StringIO("1 2\n2 1\n1 2\n")
        graph, _ = read_edge_list(text)
        assert graph.m == 1

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(io.StringIO("only_one_token\n"))

    def test_file_round_trip(self, tmp_path, medium_planted):
        graph, _ = medium_planted
        path = tmp_path / "edges.txt"
        write_edge_list(graph, path)
        loaded, names = read_edge_list(path)
        assert loaded.n == graph.n
        assert loaded.m == graph.m
        # Names are the stringified dense ids; mapping must be consistent.
        remap = {int(name): idx for idx, name in enumerate(names)}
        for u, v in graph.edges():
            assert loaded.has_edge(remap[u], remap[v])


class TestTemporalEdgeList:
    def test_basic(self):
        text = io.StringIO("a b 1\nb c 2\na b 3\n")
        graph, stream, names = read_temporal_edge_list(text)
        assert graph.m == 2
        assert len(stream) == 3
        assert [a.t for a in stream] == [1.0, 2.0, 3.0]

    def test_out_of_order_input_sorted(self):
        text = io.StringIO("a b 5\nb c 1\n")
        _, stream, _ = read_temporal_edge_list(text)
        assert [a.t for a in stream] == [1.0, 5.0]

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            read_temporal_edge_list(io.StringIO("a b -1\n"))

    def test_missing_timestamp_rejected(self):
        with pytest.raises(ValueError):
            read_temporal_edge_list(io.StringIO("a b\n"))

    def test_round_trip(self, tmp_path, small_planted):
        graph, _ = small_planted
        stream = ActivationStream(graph)
        edges = graph.edges()
        stream.append(Activation(*edges[0], 1.0))
        stream.append(Activation(*edges[3], 2.0))
        path = tmp_path / "temporal.txt"
        write_temporal_edge_list(graph, list(stream), path)
        g2, s2, names = read_temporal_edge_list(path)
        assert g2.m == graph.m
        # Activations with t > 0 are preserved.
        assert sum(1 for a in s2 if a.t > 0) == 2
