"""Tests for approximate distance queries over the pyramid index."""

import random

import pytest

from repro.graph.generators import path_graph
from repro.graph.traversal import INF, dijkstra
from repro.index.distances import (
    common_seed_witness,
    estimate_distance,
    estimate_eccentricity,
    rank_by_estimated_distance,
)
from repro.index.pyramid import PyramidIndex


@pytest.fixture
def planted_index(medium_planted):
    graph, _ = medium_planted
    weights = {e: 1.0 for e in graph.edges()}
    return graph, weights, PyramidIndex(graph, weights, k=4, seed=0)


class TestEstimateDistance:
    def test_self_distance_zero(self, planted_index):
        _, _, index = planted_index
        assert estimate_distance(index, 5, 5) == 0.0

    def test_upper_bounds_true_distance(self, planted_index):
        graph, weights, index = planted_index
        dist, _ = dijkstra(graph, 0, lambda u, v: 1.0)
        for v in range(1, 40):
            est = estimate_distance(index, 0, v)
            assert est >= dist[v] - 1e-9, (v, est, dist[v])

    def test_stretch_is_moderate(self, planted_index):
        """Sketch estimates stay within a small multiple of the truth
        (Θ(log n) stretch guarantee; empirically much tighter)."""
        graph, _, index = planted_index
        dist, _ = dijkstra(graph, 0, lambda u, v: 1.0)
        ratios = []
        for v in range(1, graph.n, 7):
            if dist[v] == INF or dist[v] == 0:
                continue
            ratios.append(estimate_distance(index, 0, v) / dist[v])
        assert sum(ratios) / len(ratios) < 4.0

    def test_symmetry(self, planted_index):
        _, _, index = planted_index
        for u, v in [(0, 10), (3, 77), (20, 99)]:
            assert estimate_distance(index, u, v) == estimate_distance(index, v, u)

    def test_connected_pairs_always_estimated(self, planted_index):
        """Level 1 has a single seed, so any connected pair shares it."""
        graph, _, index = planted_index
        rng = random.Random(0)
        for _ in range(20):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            assert estimate_distance(index, u, v) < INF

    def test_disconnected_pair_is_inf(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        index = PyramidIndex(g, {e: 1.0 for e in g.edges()}, k=2, seed=0)
        assert estimate_distance(index, 0, 2) == INF

    def test_estimates_track_weight_updates(self):
        graph = path_graph(8)
        weights = {e: 1.0 for e in graph.edges()}
        index = PyramidIndex(graph, weights, k=3, seed=1)
        before = estimate_distance(index, 0, 7)
        # Make the middle edge much cheaper: bound must not increase.
        index.update_edge_weight(3, 4, 0.01)
        after = estimate_distance(index, 0, 7)
        assert after <= before


class TestWitness:
    def test_witness_matches_estimate(self, planted_index):
        _, _, index = planted_index
        witness = common_seed_witness(index, 0, 50)
        assert witness is not None
        p_idx, level, seed = witness
        partition = index.pyramids[p_idx].partition(level)
        assert partition.seed[0] == seed == partition.seed[50]
        bound = partition.dist[0] + partition.dist[50]
        assert bound == pytest.approx(estimate_distance(index, 0, 50))

    def test_no_witness_when_disconnected(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        index = PyramidIndex(g, {e: 1.0 for e in g.edges()}, k=2, seed=0)
        assert common_seed_witness(index, 0, 2) is None


class TestRanking:
    def test_rank_orders_by_bound(self, planted_index):
        _, _, index = planted_index
        ranked = rank_by_estimated_distance(index, 0, [10, 20, 30, 40])
        bounds = [b for _, b in ranked]
        assert bounds == sorted(bounds)

    def test_direct_neighbor_ranks_before_far_node(self):
        graph = path_graph(10)
        weights = {e: 1.0 for e in graph.edges()}
        index = PyramidIndex(graph, weights, k=4, seed=2)
        ranked = rank_by_estimated_distance(index, 0, [9, 1])
        assert ranked[0][0] == 1


class TestEccentricity:
    def test_upper_bounds_true_eccentricity(self):
        graph = path_graph(16)
        weights = {e: 1.0 for e in graph.edges()}
        index = PyramidIndex(graph, weights, k=4, seed=0)
        # True eccentricity of node 0 is 15.
        assert estimate_eccentricity(index, 0) >= 15.0
