"""Tests for the benchmark harness and reporting utilities."""

import json

import pytest

from repro.bench.harness import (
    anc_static_clusters,
    run_activation_experiment,
    run_mixed_workload,
    static_quality_rows,
    timed,
    update_vs_reconstruct,
)
from repro.bench.reporting import (
    format_series,
    format_table,
    save_result,
    sparkline,
    sparkline_block,
    speedup,
)
from repro.core.anc import ANCParams
from repro.workloads.datasets import load_dataset

QUICK = ANCParams(rep=0, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_format_table_float_formatting(self):
        text = format_table([{"v": 0.123456789}], ["v"], float_fmt="{:.2f}")
        assert "0.12" in text

    def test_format_series(self):
        text = format_series(
            {"m1": [1.0, 2.0], "m2": [3.0, 4.0]}, x_values=[10, 20], x_label="t"
        )
        lines = text.splitlines()
        assert "t" in lines[0] and "m1" in lines[0]
        assert len(lines) == 4

    def test_format_series_unequal_lengths(self):
        text = format_series({"m1": [1.0], "m2": [3.0, 4.0]})
        assert text  # shorter series padded with blanks, no crash

    def test_save_result_writes_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_result("unit_test_exp", {"x": 1})
        assert path.exists()
        assert json.loads(path.read_text()) == {"x": 1}

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_timed_returns_result(self):
        seconds, value = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0.0

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_explicit_bounds(self):
        # With a wide explicit scale, mid values map to mid glyphs.
        line = sparkline([5.0], lo=0.0, hi=10.0)
        assert line not in ("▁", "█")

    def test_sparkline_block_shared_scale(self):
        text = sparkline_block({"a": [0, 1], "big": [0, 10]}, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        # Series 'a' peaks low on the shared scale.
        assert "█" not in lines[1]
        assert "█" in lines[2]


class TestStaticQualityRows:
    def test_rows_have_all_measures(self):
        rows = static_quality_rows(
            ["CO"], reps=(0,), include_baselines=False
        )
        assert len(rows) == 1
        row = rows[0]
        for key in ("modularity", "conductance", "nmi", "purity", "f1", "clusters", "seconds"):
            assert key in row
        assert row["method"] == "ANCF0"

    def test_anc_static_clusters_partition(self):
        data = load_dataset("CO")
        clusters = anc_static_clusters(data, rep=0, params=QUICK)
        assert sum(len(c) for c in clusters) == data.graph.n


class TestActivationExperiment:
    def test_timing_only_run(self):
        data = load_dataset("CO")
        runs = run_activation_experiment(
            data,
            timestamps=3,
            fraction=0.02,
            params=QUICK,
            methods=("ANCO", "DYNA"),
            evaluate_every=10**9,
        )
        assert {r.method for r in runs} == {"ANCO", "DYNA"}
        for run in runs:
            assert run.amortized_update_seconds > 0
            assert run.quality_by_time == []

    def test_quality_checkpoints_scored(self):
        data = load_dataset("CO")
        runs = run_activation_experiment(
            data,
            timestamps=4,
            fraction=0.05,
            params=QUICK,
            methods=("ANCO",),
            evaluate_every=2,
        )
        checkpoints = runs[0].quality_by_time
        assert len(checkpoints) == 2  # t=2 and t=4
        for q in checkpoints:
            assert 0.0 <= q["nmi"] <= 1.0

    def test_unknown_method_rejected(self):
        data = load_dataset("CO")
        with pytest.raises(ValueError):
            run_activation_experiment(
                data, timestamps=1, params=QUICK, methods=("NOPE",)
            )


class TestUpdateVsReconstruct:
    def test_rows_shape(self):
        data = load_dataset("CO")
        rows = update_vs_reconstruct(data, batch_sizes=(1, 4), params=QUICK)
        assert [r["batch_size"] for r in rows] == [1, 4]
        for row in rows:
            assert row["update_seconds"] > 0
            assert row["reconstruct_seconds"] > 0
            assert row["speedup"] == pytest.approx(
                row["reconstruct_seconds"] / row["update_seconds"]
            )


class TestMixedWorkload:
    def test_rows_cover_grid(self):
        data = load_dataset("CO")
        rows = run_mixed_workload(
            data,
            query_fractions=(0.1,),
            timestamps=2,
            fraction=0.02,
            methods=("ANCO", "DYNA"),
            params=QUICK,
        )
        assert {(r["query_fraction"], r["method"]) for r in rows} == {
            (0.1, "ANCO"),
            (0.1, "DYNA"),
        }
        assert all(r["seconds"] > 0 for r in rows)
