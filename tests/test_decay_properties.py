"""Property tests for the decay/activeness *algebra* (Section IV-A).

Complements ``tests/test_properties.py`` (which checks the machinery
against the naive Equation 1 recomputation) with the algebraic laws the
fault-recovery story leans on:

* **order-insensitivity within a tick** — activations sharing a
  timestamp commute *exactly* (bit-identical anchored state), because
  the global factor is frozen while ``t`` stands still and per-edge
  anchored sums are order-free;
* **monotonicity under λ** — a larger decay factor never yields larger
  activeness, for every edge and any stream;
* **rescale invariance** — where the batched rescale lands (every
  activation, never, or anywhere in between) does not change the
  *actual* values the engine observes.

All runs are seed-pinned: ``derandomize=True`` makes hypothesis derive
its examples from the test body alone, so CI and local runs explore the
identical example set — no flaky shrink sessions.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.activation import Activation, naive_activeness  # noqa: E402
from repro.core.decay import Activeness, DecayClock  # noqa: E402

PINNED = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

EDGES = [(0, 1), (1, 2), (0, 2), (2, 3)]


@st.composite
def edge_stream(draw, max_events: int = 25):
    """A time-ordered activation stream over the 4 fixed edges.

    Deltas of exactly 0.0 are common by construction, so most drawn
    streams contain at least one multi-activation tick.
    """
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(EDGES) - 1),
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            ),
            min_size=1,
            max_size=max_events,
        )
    )
    stream, t = [], 0.0
    for pick, delta in events:
        t += delta
        u, v = EDGES[pick]
        stream.append(Activation(u, v, t))
    return stream


def _run(stream, lam: float, rescale_every: int = 1 << 30) -> Activeness:
    clock = DecayClock(lam, rescale_every=rescale_every)
    act = Activeness(clock)
    for a in stream:
        act.on_activation(a.u, a.v, a.t)
        clock.note_activation()
    return act


def _anchored_state(act: Activeness):
    """Exact-repr snapshot of (anchor, every anchored value)."""
    values = sorted((e, repr(x)) for e, x in act.store.items_anchored())
    return repr(act.clock.anchor), values


class TestOrderInsensitivityWithinTick:
    @PINNED
    @given(stream=edge_stream(), data=st.data())
    def test_same_tick_activations_commute_exactly(self, stream, data):
        """Permuting activations that share a timestamp is a no-op, bit for bit."""
        # Group the stream into ticks, permute inside each tick only.
        ticks, shuffled = {}, []
        for a in stream:
            ticks.setdefault(a.t, []).append(a)
        for t in sorted(ticks):
            group = ticks[t]
            perm = data.draw(st.permutations(range(len(group))), label=f"perm@{t}")
            shuffled.extend(group[i] for i in perm)
        lam = data.draw(st.floats(min_value=0.0, max_value=1.5), label="lam")

        original = _run(stream, lam)
        permuted = _run(shuffled, lam)
        assert _anchored_state(original) == _anchored_state(permuted)

    @PINNED
    @given(
        lam=st.floats(min_value=0.0, max_value=2.0),
        t=st.floats(min_value=0.0, max_value=10.0),
        count=st.integers(min_value=2, max_value=8),
    )
    def test_same_tick_impulses_on_one_edge_sum_exactly(self, lam, t, count):
        """n same-tick impulses equal n * (one impulse), exactly.

        Within a tick the anchored delta ``1/g`` is a constant, so the
        per-edge sum is ``count`` copies of the same float added in
        sequence — reassociation never happens.
        """
        clock = DecayClock(lam)
        act = Activeness(clock)
        for _ in range(count):
            act.on_activation(0, 1, t)
        clock.advance(t)
        delta = 1.0 / clock.global_factor()
        expected = 0.0
        for _ in range(count):
            expected += delta
        assert repr(act.anchored_value(0, 1)) == repr(expected)


class TestMonotoneUnderLambda:
    @PINNED
    @given(stream=edge_stream(), data=st.data())
    def test_larger_lambda_never_increases_activeness(self, stream, data):
        lam_lo = data.draw(st.floats(min_value=0.0, max_value=1.0), label="lam_lo")
        bump = data.draw(st.floats(min_value=1e-6, max_value=1.0), label="bump")
        lam_hi = lam_lo + bump

        lo = _run(stream, lam_lo)
        hi = _run(stream, lam_hi)
        for u, v in EDGES:
            # Equal only when the edge's whole mass sits at the final
            # tick (then decay has not acted yet); never strictly above.
            assert hi.value(u, v) <= lo.value(u, v) + 1e-12

    @PINNED
    @given(
        t_gap=st.floats(min_value=0.1, max_value=20.0),
        lam=st.floats(min_value=0.01, max_value=2.0),
    )
    def test_lambda_zero_is_a_pure_counter(self, t_gap, lam):
        """λ=0 never decays; any λ>0 strictly decays across a gap."""
        frozen = _run([Activation(0, 1, 0.0), Activation(0, 1, t_gap)], 0.0)
        assert frozen.value(0, 1) == 2.0  # anclint: disable=float-equality — λ=0 makes every factor literally 1.0
        decayed = _run([Activation(0, 1, 0.0), Activation(0, 1, t_gap)], lam)
        assert decayed.value(0, 1) < 2.0
        # The impulse at t_gap is fresh, so the value sits at 1 plus the
        # first impulse's residual e^{-λ·gap}.  Past λ·gap ≈ 36 that
        # residual drops below float64 resolution at 1.0 (2^-52) and the
        # sum is *exactly* 1.0 — strict inequality only holds where the
        # residual is representable.
        if lam * t_gap < 36.0:
            assert decayed.value(0, 1) > 1.0
        else:
            assert decayed.value(0, 1) >= 1.0


class TestRescaleInvariance:
    @PINNED
    @given(stream=edge_stream(), data=st.data())
    def test_rescale_schedule_does_not_change_actual_values(self, stream, data):
        lam = data.draw(st.floats(min_value=0.0, max_value=1.5), label="lam")
        period = data.draw(st.integers(min_value=1, max_value=6), label="period")

        never = _run(stream, lam)  # rescale_every effectively infinite
        often = _run(stream, lam, rescale_every=period)
        assert often.clock.rescale_count >= len(stream) // period
        for u, v in EDGES:
            assert often.value(u, v) == pytest.approx(
                never.value(u, v), rel=1e-9, abs=1e-12
            )

    @PINNED
    @given(stream=edge_stream(), data=st.data())
    def test_rescaled_state_still_matches_equation1(self, stream, data):
        """Rescale-heavy runs agree with the quadratic ground truth."""
        lam = data.draw(st.floats(min_value=0.0, max_value=1.0), label="lam")
        act = _run(stream, lam, rescale_every=1)
        final_t = stream[-1].t
        for u, v in EDGES:
            expected = naive_activeness(stream, (u, v), final_t, lam)
            assert act.value(u, v) == pytest.approx(expected, rel=1e-8, abs=1e-12)

    @PINNED
    @given(
        lam=st.floats(min_value=0.01, max_value=1.0),
        t=st.floats(min_value=0.1, max_value=30.0),
    )
    def test_explicit_rescale_is_idempotent_on_actuals(self, lam, t):
        clock = DecayClock(lam)
        act = Activeness(clock)
        act.on_activation(0, 1, 0.0)
        clock.advance(t)
        before = act.value(0, 1)
        clock.rescale()
        assert math.isclose(act.value(0, 1), before, rel_tol=1e-12)
        assert clock.anchor == clock.now  # anclint: disable=float-equality — rescale assigns t* = t verbatim
        clock.rescale()
        assert math.isclose(act.value(0, 1), before, rel_tol=1e-12)
