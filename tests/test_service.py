"""Tests for the streaming service layer (``repro.service``).

Covers the ISSUE's required surface:

* micro-batching intake — flush on size, flush on latency, bounded-queue
  backpressure, clean drain on close;
* the single-writer host — applied state matches a reference engine fed
  the same activations, queries stay consistent while ingest is running,
  watches, sync barriers;
* durability — WAL round trip and torn-tail repair, checkpoint +
  WAL-tail recovery that is *byte-identical* for ANCO and ANCOR, both
  in-process and across a ``kill -9`` of a real server subprocess;
* metrics instruments and registry rendering;
* the JSON-lines protocol end to end (in-process asyncio server).

No pytest-asyncio in the toolchain: every async scenario runs through
``asyncio.run()`` inside a plain sync test.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.activation import Activation
from repro.core.anc import ANCO, ANCOR, ANCParams, make_engine
from repro.graph.generators import planted_partition
from repro.service import (
    ANCServer,
    CheckpointStore,
    EngineHost,
    MetricsRegistry,
    MicroBatcher,
    ServerConfig,
    ServiceClient,
    ServiceError,
    WriteAheadLog,
    recover_engine,
)
from repro.service.metrics import Counter, Gauge, Histogram
from repro.service.snapshots import apply_activations, restore_engine
from repro.workloads.streams import community_biased_stream

SRC = Path(__file__).resolve().parent.parent / "src"


def make_stream(graph, labels, *, timestamps=20, seed=3):
    return list(
        community_biased_stream(
            graph, labels, timestamps=timestamps, fraction=0.08, seed=seed
        )
    )


def assert_engines_identical(a, b):
    """Bit-for-bit equality of everything that determines query output."""
    assert a.activations_processed == b.activations_processed
    assert a.now == b.now
    assert a.metric.clock.anchor == b.metric.clock.anchor
    assert a.index.weights_view() == b.index.weights_view()
    assert dict(a.metric.similarity.items_anchored()) == dict(
        b.metric.similarity.items_anchored()
    )
    assert list(a.metric.sigma._strength) == list(b.metric.sigma._strength)
    for p_a, p_b in zip(a.index.partitions(), b.index.partitions()):
        assert p_a.seeds == p_b.seeds
        assert p_a.seed == p_b.seed
        assert p_a.parent == p_b.parent
        assert p_a.dist == p_b.dist
    for level in range(1, a.queries.num_levels + 1):
        assert a.clusters(level) == b.clusters(level)


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------

class TestMicroBatcher:
    def test_flush_on_batch_size(self):
        async def scenario():
            batcher = MicroBatcher(batch_size=4, max_latency=60.0, max_pending=16)
            for i in range(4):
                await batcher.submit(Activation(0, 1, float(i + 1)))
            batch = await asyncio.wait_for(batcher.next_batch(), 1.0)
            return batch

        batch = asyncio.run(scenario())
        assert len(batch) == 4
        assert [a.t for a in batch] == [1.0, 2.0, 3.0, 4.0]

    def test_flush_on_latency(self):
        async def scenario():
            batcher = MicroBatcher(batch_size=1000, max_latency=0.05, max_pending=2000)
            await batcher.submit(Activation(0, 1, 1.0))
            await batcher.submit(Activation(0, 1, 2.0))
            started = time.perf_counter()
            batch = await asyncio.wait_for(batcher.next_batch(), 5.0)
            return batch, time.perf_counter() - started

        batch, elapsed = asyncio.run(scenario())
        assert len(batch) == 2  # flushed well short of batch_size
        assert elapsed < 2.0

    def test_backpressure_blocks_until_drained(self):
        async def scenario():
            batcher = MicroBatcher(batch_size=2, max_latency=0.01, max_pending=2)
            await batcher.submit(Activation(0, 1, 1.0))
            await batcher.submit(Activation(0, 1, 2.0))
            assert not batcher.try_submit(Activation(0, 1, 3.0))  # full

            blocked = asyncio.create_task(batcher.submit(Activation(0, 1, 3.0)))
            await asyncio.sleep(0.02)
            assert not blocked.done()  # still waiting on queue space

            batch = await batcher.next_batch()  # frees space
            await asyncio.wait_for(blocked, 1.0)
            return batch, batcher.depth

        batch, depth = asyncio.run(scenario())
        assert len(batch) == 2
        assert depth == 1  # the unblocked third activation

    def test_close_drains_then_ends(self):
        async def scenario():
            batcher = MicroBatcher(batch_size=10, max_latency=0.01, max_pending=16)
            for i in range(3):
                await batcher.submit(Activation(0, 1, float(i + 1)))
            await batcher.close()
            first = await batcher.next_batch()
            second = await batcher.next_batch()
            third = await batcher.next_batch()  # stays None once drained
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert [a.t for a in first] == [1.0, 2.0, 3.0]
        assert second is None
        assert third is None

    def test_submit_after_close_rejected(self):
        async def scenario():
            batcher = MicroBatcher()
            await batcher.close()
            with pytest.raises(RuntimeError):
                await batcher.submit(Activation(0, 1, 1.0))
            with pytest.raises(RuntimeError):
                batcher.try_submit(Activation(0, 1, 1.0))

        asyncio.run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_latency=0.0)
        with pytest.raises(ValueError):
            MicroBatcher(batch_size=8, max_pending=4)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter(self):
        c = Counter("acts")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_direct_and_callable(self):
        g = Gauge("depth")
        g.set(7.0)
        assert g.value == 7.0
        assert Gauge("fn", lambda: 3.0).value == 3.0

    def test_histogram_percentiles(self):
        h = Histogram("lat", window=100)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert 49.0 <= h.percentile(50) <= 52.0
        summary = h.summary()
        assert summary["max"] == 100.0
        assert summary["p99"] >= summary["p50"]

    def test_histogram_window_bounds_memory(self):
        h = Histogram("lat", window=10)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000  # lifetime count is exact
        assert h.percentile(0) == 990.0  # window holds only the tail

    def test_registry_snapshot_and_rates(self):
        registry = MetricsRegistry()
        c = registry.counter("acts")
        registry.gauge("depth", lambda: 4.0)
        registry.histogram("lat").observe(0.25)
        c.inc(10)
        doc = registry.snapshot()
        assert doc["counters"]["acts"] == 10.0
        assert doc["rates"]["acts_per_s"] > 0
        assert doc["gauges"]["depth"] == 4.0
        assert doc["histograms"]["lat"]["count"] == 1.0
        json.dumps(doc)  # must be JSON-able as served by the metrics op
        # Rates are deltas: a second snapshot with no increments is ~0.
        assert registry.snapshot()["rates"]["acts_per_s"] == pytest.approx(0.0)

    def test_registry_idempotent_factories(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_log_line_mentions_instruments(self):
        registry = MetricsRegistry()
        registry.counter("acts").inc(5)
        registry.histogram("flush").observe(0.01)
        line = registry.log_line()
        assert "acts_per_s" in line
        assert "flush[p50=" in line


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------

class TestWriteAheadLog:
    def test_round_trip_exact_floats(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        acts = [Activation(0, 1, 0.1), Activation(2, 3, 1.0 / 3.0)]
        for act in acts:
            wal.append(act)
        wal.close()
        replayed = list(WriteAheadLog.replay(path))
        assert replayed == acts  # repr round-trips floats exactly

    def test_replay_skip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for i in range(5):
            wal.append(Activation(0, 1, float(i + 1)))
        wal.close()
        tail = list(WriteAheadLog.replay(path, skip=3))
        assert [a.t for a in tail] == [4.0, 5.0]

    def test_torn_tail_tolerated_and_repaired(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(Activation(0, 1, 1.0))
        wal.append(Activation(2, 3, 2.0))
        wal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("4 5")  # append torn mid-crash, before the timestamp
        assert len(list(WriteAheadLog.replay(path))) == 2
        # Re-opening repairs the tail so new appends stay parseable.
        wal = WriteAheadLog(path)
        assert wal.entries == 2
        wal.append(Activation(4, 5, 3.0))
        wal.close()
        replayed = list(WriteAheadLog.replay(path))
        assert [a.t for a in replayed] == [1.0, 2.0, 3.0]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("0 1 1.0\ngarbage line\n2 3 2.0\n")
        with pytest.raises(ValueError, match="corrupt"):
            list(WriteAheadLog.replay(path))

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert list(WriteAheadLog.replay(tmp_path / "absent.log")) == []


# ----------------------------------------------------------------------
# Deterministic batch hooks
# ----------------------------------------------------------------------

class TestApplyActivations:
    def test_partitioning_invariance(self, small_planted, quick_params):
        """Any micro-batch partitioning of the same sequence produces the
        same engine state — the invariant recovery relies on."""
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=12)
        whole = ANCOR(graph, quick_params)
        apply_activations(whole, acts)
        chunked = ANCOR(graph, quick_params)
        i = 0
        sizes = [1, 3, 7, 2, 11, 5]
        while i < len(acts):
            size = sizes[i % len(sizes)]
            apply_activations(chunked, acts[i : i + size])
            i += size
        assert_engines_identical(whole, chunked)


# ----------------------------------------------------------------------
# EngineHost
# ----------------------------------------------------------------------

def run_host_scenario(engine, scenario, **host_kwargs):
    """Start a host + run loop, execute ``scenario(host)``, close cleanly."""

    async def main():
        batcher = MicroBatcher(batch_size=16, max_latency=0.01, max_pending=256)
        host = EngineHost(engine, batcher, **host_kwargs)
        run_task = asyncio.create_task(host.run())
        try:
            return await scenario(host)
        finally:
            await host.close(run_task)

    return asyncio.run(main())


class TestEngineHost:
    def test_applied_state_matches_reference(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=10)

        async def scenario(host):
            for act in acts:
                await host.ingest(act)
            state = await host.wait_applied()
            level, clusters = await host.clusters()
            return state, level, clusters

        state, level, clusters = run_host_scenario(ANCO(graph, quick_params), scenario)
        assert state.activations == len(acts)

        reference = ANCO(graph, quick_params)
        apply_activations(reference, acts)
        assert clusters == reference.clusters(level)
        assert state.t == reference.now

    def test_queries_consistent_during_ingest(self, small_planted, quick_params):
        """Reads served concurrently with writes always see a complete,
        consistent partition of the node set."""
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=15)

        async def scenario(host):
            problems = []

            async def reader():
                while not done.done():
                    level, clusters = await host.clusters()
                    covered = sorted(v for c in clusters for v in c)
                    if covered != list(range(graph.n)):
                        problems.append("clusters do not partition V")
                    _, cluster = await host.cluster_of(0)
                    if 0 not in cluster:
                        problems.append("node missing from its own cluster")
                    await asyncio.sleep(0)

            async def writer():
                for act in acts:
                    await host.ingest(act)
                await host.wait_applied()

            done = asyncio.create_task(writer())
            read_task = asyncio.create_task(reader())
            await done
            await read_task
            return problems, host.applied

        problems, applied = run_host_scenario(ANCO(graph, quick_params), scenario)
        assert problems == []
        assert applied == len(acts)

    def test_ensure_level_materializes_on_demand(self, small_planted, quick_params):
        graph, labels = small_planted

        async def scenario(host):
            assert 1 not in host.state.clusters_by_level
            level, clusters = await host.clusters(1)
            return level, clusters, sorted(host.state.clusters_by_level)

        level, clusters, tracked = run_host_scenario(
            ANCO(graph, quick_params), scenario
        )
        assert level == 1
        assert sum(len(c) for c in clusters) == graph.n
        assert 1 in tracked

    def test_level_clamped_to_range(self, small_planted, quick_params):
        graph, labels = small_planted

        async def scenario(host):
            hi, _ = await host.clusters(9999)
            lo, _ = await host.clusters(-5)
            return hi, lo, host.state.num_levels

        hi, lo, num_levels = run_host_scenario(ANCO(graph, quick_params), scenario)
        assert hi == num_levels
        assert lo == 1

    def test_monotonic_time_enforced(self, small_planted, quick_params):
        graph, labels = small_planted
        (u, v) = graph.edges()[0]

        async def scenario(host):
            await host.ingest(Activation(u, v, 5.0))
            with pytest.raises(ValueError, match="non-monotonic"):
                await host.ingest(Activation(u, v, 3.0))
            assert host.clamp_time(3.0) == 5.0
            assert host.clamp_time(8.0) == 8.0
            await host.ingest(Activation(u, v, host.clamp_time(3.0)))
            state = await host.wait_applied()
            return state

        state = run_host_scenario(ANCO(graph, quick_params), scenario)
        assert state.activations == 2
        assert state.t == 5.0

    def test_wait_applied_target(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=6)

        async def scenario(host):
            waiter = asyncio.create_task(host.wait_applied(len(acts)))
            for act in acts:
                await host.ingest(act)
            state = await asyncio.wait_for(waiter, 10.0)
            return state.activations

        applied = run_host_scenario(ANCO(graph, quick_params), scenario)
        assert applied == len(acts)

    def test_watch_reports_changes(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=20, seed=9)

        async def scenario(host):
            cluster = await host.watch(0)
            assert 0 in cluster
            for act in acts:
                await host.ingest(act)
            await host.wait_applied()
            events = host.drain_watch_events()
            assert host.drain_watch_events() == []  # drained
            await host.unwatch(0)
            return cluster, events

        cluster, events = run_host_scenario(ANCO(graph, quick_params), scenario)
        # Event sequences depend on observation boundaries (the host
        # observes per micro-batch), but their *net effect* must equal
        # the reference engine's final cluster for the watched node.
        current = set(cluster)
        for event in events:
            assert event.node == 0
            assert not (event.joined & event.left)
            current |= event.joined
            current -= event.left
        reference = ANCO(graph, quick_params)
        apply_activations(reference, acts)
        level = reference.queries.sqrt_n_level()
        assert current == set(reference.cluster_of(0, level))

    def test_stats_surface(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=4)

        async def scenario(host):
            for act in acts:
                await host.ingest(act)
            await host.wait_applied()
            return host.stats()

        stats = run_host_scenario(ANCO(graph, quick_params), scenario)
        assert stats["ingested"] == len(acts)
        assert stats["applied"] == len(acts)
        assert stats["queue_depth"] == 0
        assert stats["activations"] == len(acts)
        assert "roles" in stats

    def test_host_metrics_instrumented(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=5)
        metrics = MetricsRegistry()

        async def scenario(host):
            for act in acts:
                await host.ingest(act)
            await host.wait_applied()
            await host.clusters()
            return metrics.snapshot()

        doc = run_host_scenario(
            ANCO(graph, quick_params), scenario, metrics=metrics
        )
        counters = doc["counters"]
        assert counters["activations_ingested"] == len(acts)
        assert counters["activations_applied"] == len(acts)
        assert counters["batches_applied"] >= 1
        assert counters["queries_served"] >= 1
        assert doc["histograms"]["batch_flush_seconds"]["count"] >= 1
        assert doc["gauges"]["queue_depth"] == 0.0

    def test_ingest_after_close_rejected(self, small_planted, quick_params):
        graph, labels = small_planted
        engine = ANCO(graph, quick_params)

        async def main():
            batcher = MicroBatcher(batch_size=4, max_latency=0.01, max_pending=16)
            host = EngineHost(engine, batcher)
            run_task = asyncio.create_task(host.run())
            await host.close(run_task)
            with pytest.raises(RuntimeError):
                await host.ingest(Activation(*graph.edges()[0], 1.0))

        asyncio.run(main())


# ----------------------------------------------------------------------
# Crash recovery (in-process)
# ----------------------------------------------------------------------

class TestCrashRecovery:
    @pytest.mark.parametrize("engine_name", ["ANCO", "ANCOR"])
    def test_checkpoint_plus_wal_tail_is_byte_identical(
        self, tmp_path, small_planted, quick_params, engine_name
    ):
        """The acceptance criterion: checkpoint at N, crash at N+k, and
        recovery reproduces the crashed engine exactly."""
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=25, seed=4)
        cut = 100

        store = CheckpointStore(tmp_path)
        wal = WriteAheadLog(store.wal_path)
        live = make_engine(engine_name, graph, quick_params)
        for act in acts[:cut]:
            wal.append(act)
        apply_activations(live, acts[:cut])
        store.write_checkpoint(live)
        for act in acts[cut:]:
            wal.append(act)
        apply_activations(live, acts[cut:])
        wal.close()  # simulated crash point: WAL flushed, no new checkpoint

        recovered, replayed = recover_engine(graph, store, params=quick_params)
        assert replayed == len(acts) - cut
        assert type(recovered).__name__ == engine_name
        assert_engines_identical(live, recovered)

    def test_recovery_with_torn_wal_tail(
        self, tmp_path, small_planted, quick_params
    ):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=10)
        store = CheckpointStore(tmp_path)
        wal = WriteAheadLog(store.wal_path)
        for act in acts:
            wal.append(act)
        wal.close()
        with open(store.wal_path, "a", encoding="utf-8") as fh:
            fh.write("3 4")  # the append in flight at the crash

        recovered, replayed = recover_engine(graph, store, params=quick_params)
        assert replayed == len(acts)  # torn line skipped, nothing else lost
        reference = ANCO(graph, quick_params)
        apply_activations(reference, acts)
        assert_engines_identical(reference, recovered)

    def test_wal_only_recovery(self, tmp_path, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=8)
        store = CheckpointStore(tmp_path)
        wal = WriteAheadLog(store.wal_path)
        for act in acts:
            wal.append(act)
        wal.close()
        recovered, replayed = recover_engine(graph, store, params=quick_params)
        assert replayed == len(acts)

    def test_cold_start(self, tmp_path, small_planted, quick_params):
        graph, _ = small_planted
        engine, replayed = recover_engine(
            graph, CheckpointStore(tmp_path), params=quick_params
        )
        assert replayed == 0
        assert engine.activations_processed == 0

    def test_incomplete_checkpoint_ignored(
        self, tmp_path, small_planted, quick_params
    ):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=6)
        store = CheckpointStore(tmp_path)
        wal = WriteAheadLog(store.wal_path)
        live = ANCO(graph, quick_params)
        for act in acts:
            wal.append(act)
        apply_activations(live, acts)
        wal.close()
        complete = store.write_checkpoint(live)
        # A later checkpoint torn mid-write: dir exists, MANIFEST missing.
        torn = tmp_path / "checkpoint-99999"
        torn.mkdir()
        (torn / "engine.json").write_text("{}")
        found = store.latest_checkpoint()
        assert found is not None
        assert found[0] == complete
        recovered, replayed = recover_engine(graph, store, params=quick_params)
        assert replayed == 0
        assert_engines_identical(live, recovered)

    def test_restore_rejects_unknown_state_version(
        self, tmp_path, small_planted, quick_params
    ):
        graph, _ = small_planted
        with pytest.raises(ValueError, match="unsupported engine-state"):
            restore_engine(graph, {"format": 42}, tmp_path / "index.json")

    def test_dump_restore_preserves_update_workers(
        self, tmp_path, small_planted
    ):
        """A checkpointed engine keeps its ParallelUpdater wiring."""
        graph, labels = small_planted
        params = ANCParams(rep=1, k=2, seed=0, update_workers=2)
        engine = ANCO(graph, params)
        try:
            acts = make_stream(graph, labels, timestamps=5)
            apply_activations(engine, acts)
            store = CheckpointStore(tmp_path)
            store.write_checkpoint(engine)
            recovered, _ = recover_engine(graph, store)
        finally:
            engine.close()
        try:
            assert recovered.params.update_workers == 2
            assert recovered._updater is not None
            assert_engines_identical(engine, recovered)
        finally:
            recovered.close()


# ----------------------------------------------------------------------
# Server protocol (in-process)
# ----------------------------------------------------------------------

def run_server_scenario(scenario, *, names=None, config=None, params=None,
                        graph_and_labels=None):
    """Start an in-process ANCServer; run ``scenario(reader, writer, server)``."""
    graph, labels = graph_and_labels

    async def main():
        server = ANCServer(
            graph,
            names,
            config=config or ServerConfig(metrics_interval=0.0),
            params=params or ANCParams(rep=1, k=2, seed=0),
        )
        await server.start()
        serve_task = asyncio.create_task(server.serve_forever())
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        try:
            return await scenario(reader, writer, server)
        finally:
            writer.close()
            await server.stop()
            await serve_task

    return asyncio.run(main())


async def rpc(reader, writer, **request):
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    return json.loads(await asyncio.wait_for(reader.readline(), 30.0))


class TestServerProtocol:
    def test_ping_and_id_echo(self, small_planted):
        async def scenario(reader, writer, server):
            return await rpc(reader, writer, op="ping", id=17)

        response = run_server_scenario(scenario, graph_and_labels=small_planted)
        assert response["ok"] is True
        assert response["id"] == 17
        assert response["applied"] == 0

    def test_ingest_sync_query_round_trip(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=10)

        async def scenario(reader, writer, server):
            items = [[a.u, a.v, a.t] for a in acts]
            accepted = await rpc(reader, writer, op="ingest_batch", items=items)
            synced = await rpc(reader, writer, op="sync")
            clusters = await rpc(reader, writer, op="clusters")
            local = await rpc(reader, writer, op="local", node=acts[0].u)
            return accepted, synced, clusters, local

        accepted, synced, clusters, local = run_server_scenario(
            scenario, graph_and_labels=small_planted, params=quick_params
        )
        assert accepted["accepted"] == len(acts)
        assert synced["applied"] == len(acts)
        reference = ANCO(graph, quick_params)
        apply_activations(reference, acts)
        expected = reference.clusters()
        assert clusters["applied"] == len(acts)
        assert clusters["clusters"] == expected
        assert acts[0].u in local["cluster"]

    def test_labels_resolved(self, small_planted):
        graph, _ = small_planted
        names = [f"user{i}" for i in range(graph.n)]
        (u, v) = graph.edges()[0]

        async def scenario(reader, writer, server):
            ingest = await rpc(
                reader, writer, op="ingest", u=f"user{u}", v=f"user{v}", t=1.0
            )
            await rpc(reader, writer, op="sync")
            local = await rpc(reader, writer, op="local", node=f"user{u}")
            return ingest, local

        ingest, local = run_server_scenario(
            scenario, names=names, graph_and_labels=small_planted
        )
        assert ingest["ok"] is True
        assert f"user{u}" in local["cluster"]
        assert all(isinstance(x, str) for x in local["cluster"])

    def test_errors_reported_not_fatal(self, small_planted):
        graph, _ = small_planted

        async def scenario(reader, writer, server):
            bad_op = await rpc(reader, writer, op="frobnicate")
            bad_node = await rpc(reader, writer, op="local", node="nope")
            not_edge = await rpc(
                reader, writer, op="ingest", u=0, v=0, t=1.0
            )
            bad_json_line = b"{not json}\n"
            writer.write(bad_json_line)
            await writer.drain()
            bad_json = json.loads(await reader.readline())
            alive = await rpc(reader, writer, op="ping")
            return bad_op, bad_node, not_edge, bad_json, alive

        bad_op, bad_node, not_edge, bad_json, alive = run_server_scenario(
            scenario, graph_and_labels=small_planted
        )
        for response in (bad_op, bad_node, not_edge, bad_json):
            assert response["ok"] is False
            assert "error" in response
        assert alive["ok"] is True  # the connection survived every error

    def test_zoom_and_watch_ops(self, small_planted, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=15, seed=9)

        async def scenario(reader, writer, server):
            watch = await rpc(reader, writer, op="watch", node=0)
            items = [[a.u, a.v, a.t] for a in acts]
            await rpc(reader, writer, op="ingest_batch", items=items)
            await rpc(reader, writer, op="sync")
            changes = await rpc(reader, writer, op="changes")
            level = (await rpc(reader, writer, op="clusters"))["level"]
            zin = await rpc(reader, writer, op="zoom_in", level=level)
            zout = await rpc(reader, writer, op="zoom_out", level=level)
            stats = await rpc(reader, writer, op="stats")
            metrics = await rpc(reader, writer, op="metrics")
            return watch, changes, level, zin, zout, stats, metrics

        watch, changes, level, zin, zout, stats, metrics = run_server_scenario(
            scenario, graph_and_labels=small_planted, params=quick_params
        )
        assert 0 in watch["cluster"]
        assert isinstance(changes["changes"], list)
        for event in changes["changes"]:
            assert event["node"] == 0
            assert set(event) >= {"level", "t", "joined", "left"}
        assert zin["level"] == level + 1
        assert zout["level"] == level - 1
        assert stats["stats"]["applied"] == len(acts)
        assert metrics["metrics"]["counters"]["activations_applied"] == len(acts)

    def test_snapshot_requires_data_dir(self, small_planted):
        async def scenario(reader, writer, server):
            return await rpc(reader, writer, op="snapshot")

        response = run_server_scenario(scenario, graph_and_labels=small_planted)
        assert response["ok"] is False
        assert "data_dir" in response["error"]

    def test_snapshot_and_shutdown(self, small_planted, tmp_path, quick_params):
        graph, labels = small_planted
        acts = make_stream(graph, labels, timestamps=5)
        config = ServerConfig(
            metrics_interval=0.0, data_dir=tmp_path, checkpoint_every=0
        )

        async def scenario(reader, writer, server):
            items = [[a.u, a.v, a.t] for a in acts]
            await rpc(reader, writer, op="ingest_batch", items=items)
            snapshot = await rpc(reader, writer, op="snapshot")
            shutdown = await rpc(reader, writer, op="shutdown")
            return snapshot, shutdown

        snapshot, shutdown = run_server_scenario(
            scenario,
            graph_and_labels=small_planted,
            config=config,
            params=quick_params,
        )
        assert snapshot["ok"] is True
        assert snapshot["applied"] == len(acts)
        assert Path(snapshot["path"]).name == f"checkpoint-{len(acts)}"
        assert shutdown["ok"] is True
        assert shutdown["stopping"] is True
        # Every envelope is stamped with the node's replication identity.
        assert shutdown["role"] == "primary"
        assert shutdown["epoch"] >= 1
        # The graceful shutdown left a recoverable store behind.
        recovered, replayed = recover_engine(
            graph, CheckpointStore(tmp_path), params=quick_params
        )
        assert recovered.activations_processed == len(acts)


# ----------------------------------------------------------------------
# Full server subprocess: kill -9 and recover
# ----------------------------------------------------------------------

def start_server_subprocess(edgelist, data_dir):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(edgelist),
            "--port", "0", "--data-dir", str(data_dir),
            "--rep", "1", "--pyramids", "2",
            "--batch-size", "32", "--max-latency", "0.02",
            "--checkpoint-every", "100", "--metrics-interval", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("SERVING "), f"unexpected announce line: {line!r}"
    _, host, port = line.split()
    return proc, host, int(port)


class TestServerSubprocess:
    def test_kill_dash_nine_recovers_identical_clusters(self, tmp_path):
        """SIGKILL the serving process mid-stream; the restarted server
        answers ``clusters`` identically at the same granularity."""
        graph, labels = planted_partition(60, 4, p_in=0.5, p_out=0.02, seed=11)
        edgelist = tmp_path / "graph.txt"
        edgelist.write_text(
            "".join(f"n{u} n{v}\n" for u, v in graph.edges())
        )
        data_dir = tmp_path / "data"
        acts = make_stream(graph, labels, timestamps=30, seed=2)
        items = [[f"n{a.u}", f"n{a.v}", a.t] for a in acts]
        cut = len(items) // 2

        proc, host, port = start_server_subprocess(edgelist, data_dir)
        try:
            with ServiceClient(host, port) as client:
                client.ingest_batch(items[:cut])
                client.snapshot()  # durable checkpoint at the cut
                client.ingest_batch(items[cut:])  # WAL tail past it
                client.sync()
                before = client.clusters_info()
                level = before["level"]
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        proc, host, port = start_server_subprocess(edgelist, data_dir)
        try:
            with ServiceClient(host, port) as client:
                after = client.clusters_info(level=level)
                stats = client.stats()
                client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        assert stats["applied"] == len(items)
        assert after["level"] == before["level"]
        assert after["t"] == before["t"]
        assert after["applied"] == before["applied"]
        assert after["clusters"] == before["clusters"]

    def test_client_error_surface(self, tmp_path):
        graph, _ = planted_partition(30, 3, p_in=0.6, p_out=0.05, seed=1)
        edgelist = tmp_path / "graph.txt"
        edgelist.write_text("".join(f"{u} {v}\n" for u, v in graph.edges()))
        proc, host, port = start_server_subprocess(edgelist, tmp_path / "data")
        try:
            with ServiceClient(host, port) as client:
                assert client.ping()["ok"] is True
                with pytest.raises(ServiceError, match="unknown node"):
                    client.local("not-a-node")
                client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
