"""Tests for the parallel updater (Lemma 13) and index persistence."""

import random

import pytest

from repro.graph.generators import planted_partition
from repro.graph.graph import Graph
from repro.index.parallel import ParallelUpdater, build_index_parallel
from repro.index.persistence import graph_fingerprint, load_index, save_index
from repro.index.pyramid import PyramidIndex


@pytest.fixture
def built_index(medium_planted):
    graph, _ = medium_planted
    weights = {e: 1.0 for e in graph.edges()}
    return graph, PyramidIndex(graph, weights, k=3, seed=4)


class TestParallelUpdater:
    def test_matches_sequential_updates(self, built_index):
        """Lemma 13: partitions are independent — the concurrent repair
        must produce exactly the sequential result."""
        graph, parallel_index = built_index
        sequential_index = PyramidIndex(
            graph, parallel_index.weights_view(), k=3, seed=4
        )
        rng = random.Random(0)
        edges = list(graph.edges())
        with ParallelUpdater(parallel_index, workers=4) as updater:
            for _ in range(40):
                u, v = rng.choice(edges)
                w = rng.choice([0.25, 0.5, 2.0, 4.0])
                updater.update_edge_weight(u, v, w)
                sequential_index.update_edge_weight(u, v, w)
        for p_par, p_seq in zip(
            parallel_index.partitions(), sequential_index.partitions()
        ):
            assert p_par.seed == p_seq.seed
            for v in graph.nodes():
                assert p_par.dist[v] == pytest.approx(p_seq.dist[v], rel=1e-9)
        parallel_index.check_consistency()

    def test_noop_on_equal_weight(self, built_index):
        _, index = built_index
        with ParallelUpdater(index, workers=2) as updater:
            e = index.graph.edges()[0]
            assert updater.update_edge_weight(*e, index.weight(*e)) == 0

    def test_rejects_bad_weight(self, built_index):
        _, index = built_index
        with ParallelUpdater(index) as updater:
            with pytest.raises(ValueError):
                updater.update_edge_weight(0, 1, 0.0)

    def test_rejects_bad_worker_count(self, built_index):
        _, index = built_index
        with pytest.raises(ValueError):
            ParallelUpdater(index, workers=0)

    def test_counters_maintained(self, built_index):
        _, index = built_index
        before = index.update_count
        with ParallelUpdater(index, workers=2) as updater:
            updater.update_edge_weight(*index.graph.edges()[3], 0.5)
        assert index.update_count == before + 1
        assert index.total_touched > 0


class TestParallelBuild:
    def test_identical_to_sequential_build(self, medium_planted):
        graph, _ = medium_planted
        weights = {e: 1.0 for e in graph.edges()}
        sequential = PyramidIndex(graph, weights, k=3, seed=9)
        concurrent = build_index_parallel(graph, weights, k=3, seed=9, workers=4)
        for p_seq, p_par in zip(sequential.partitions(), concurrent.partitions()):
            assert p_seq.seeds == p_par.seeds
            assert p_seq.seed == p_par.seed
            assert p_seq.dist == p_par.dist

    def test_built_index_is_live(self, medium_planted):
        graph, _ = medium_planted
        weights = {e: 1.0 for e in graph.edges()}
        index = build_index_parallel(graph, weights, k=2, seed=1, workers=2)
        index.update_edge_weight(*graph.edges()[0], 0.5)
        index.check_consistency()

    def test_validation(self, medium_planted):
        graph, _ = medium_planted
        weights = {e: 1.0 for e in graph.edges()}
        with pytest.raises(ValueError):
            build_index_parallel(graph, weights, workers=0)
        with pytest.raises(ValueError):
            build_index_parallel(graph, {}, workers=1)
        with pytest.raises(ValueError):
            build_index_parallel(graph, weights, k=0, workers=1)


class TestPersistence:
    def test_round_trip_identical(self, built_index, tmp_path):
        graph, index = built_index
        # Perturb the index so it carries non-trivial state.
        index.update_edge_weight(*graph.edges()[5], 0.3)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(graph, path)
        assert loaded.k == index.k
        assert loaded.support == index.support
        assert loaded.weights_view() == index.weights_view()
        for p_orig, p_load in zip(index.partitions(), loaded.partitions()):
            assert p_orig.seeds == p_load.seeds
            assert p_orig.seed == p_load.seed
            assert p_orig.parent == p_load.parent
            assert p_orig.dist == p_load.dist

    def test_loaded_index_is_live(self, built_index, tmp_path):
        """A restored index supports updates and queries immediately."""
        graph, index = built_index
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(graph, path)
        e = graph.edges()[11]
        loaded.update_edge_weight(*e, 0.2)
        fresh = PyramidIndex(graph, loaded.weights_view(), k=3, seed=4)
        for p_load, p_ref in zip(loaded.partitions(), fresh.partitions()):
            assert p_load.seed == p_ref.seed
        from repro.index.clustering import power_clustering

        clusters = power_clustering(loaded, loaded.num_levels)
        assert sum(len(c) for c in clusters) == graph.n

    def test_wrong_graph_rejected(self, built_index, tmp_path):
        graph, index = built_index
        path = tmp_path / "index.json"
        save_index(index, path)
        other, _ = planted_partition(graph.n, 4, seed=99)
        with pytest.raises(ValueError, match="does not match"):
            load_index(other, path)

    def test_wrong_format_rejected(self, built_index, tmp_path):
        graph, index = built_index
        path = tmp_path / "index.json"
        path.write_text('{"format": 999}')
        with pytest.raises(ValueError, match="unsupported"):
            load_index(graph, path)

    def test_unknown_format_error_is_actionable(self, built_index, tmp_path):
        """A future-version document fails with a clear ValueError that
        names both versions — never a KeyError from missing fields."""
        graph, _ = built_index
        path = tmp_path / "index.json"
        path.write_text('{"format": 7}')
        with pytest.raises(ValueError) as excinfo:
            load_index(graph, path)
        message = str(excinfo.value)
        assert "7" in message
        from repro.index.persistence import FORMAT_VERSION

        assert str(FORMAT_VERSION) in message

    def test_missing_format_field_rejected(self, built_index, tmp_path):
        graph, _ = built_index
        path = tmp_path / "index.json"
        path.write_text('{"weights": []}')
        with pytest.raises(ValueError, match="unsupported index format"):
            load_index(graph, path)

    def test_non_object_document_rejected(self, built_index, tmp_path):
        graph, _ = built_index
        path = tmp_path / "index.json"
        path.write_text('[1, 2, 3]')
        with pytest.raises(ValueError, match="JSON object"):
            load_index(graph, path)

    def test_weight_table_round_trip_after_dynamic_updates(
        self, built_index, tmp_path
    ):
        """The weight table survives save/load after a burst of dynamic
        updates, and the restored index keeps evolving identically."""
        graph, index = built_index
        rng = random.Random(7)
        edges = list(graph.edges())
        for _ in range(30):
            u, v = rng.choice(edges)
            index.update_edge_weight(u, v, rng.choice([0.2, 0.5, 1.5, 3.0]))
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(graph, path)
        assert loaded.weights_view() == index.weights_view()
        # Continue the update stream on both; they must stay in lockstep.
        for _ in range(15):
            u, v = rng.choice(edges)
            w = rng.choice([0.25, 0.75, 2.0])
            index.update_edge_weight(u, v, w)
            loaded.update_edge_weight(u, v, w)
        assert loaded.weights_view() == index.weights_view()
        for p_orig, p_load in zip(index.partitions(), loaded.partitions()):
            assert p_orig.seed == p_load.seed
            assert p_orig.parent == p_load.parent
            assert p_orig.dist == p_load.dist
        loaded.check_consistency()

    def test_fingerprint_order_independent(self):
        g1 = Graph(4, [(0, 1), (2, 3), (1, 2)])
        g2 = Graph(4, [(1, 2), (0, 1), (2, 3)])
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_fingerprint_detects_edge_change(self):
        g1 = Graph(4, [(0, 1), (2, 3)])
        g2 = Graph(4, [(0, 1), (1, 3)])
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_inf_distances_survive(self, tmp_path):
        g = Graph(5, [(0, 1), (2, 3)])  # node 4 isolated
        index = PyramidIndex(g, {e: 1.0 for e in g.edges()}, k=2, seed=1)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(g, path)
        from repro.graph.traversal import INF

        for p_orig, p_load in zip(index.partitions(), loaded.partitions()):
            for v in g.nodes():
                if p_orig.dist[v] == INF:
                    assert p_load.dist[v] == INF
