"""Tests for Update-Decrease / Update-Increase (Algorithms 1-3).

The ground truth for every update is a fresh multi-source Dijkstra under
the new weights: after any weight change the incrementally maintained
``dist``/``seed`` must match it exactly (modulo float tolerance), and the
forest invariants must hold (Lemmas 11-12).
"""

import random

import pytest

from repro.graph.generators import grid_graph, path_graph, planted_partition
from repro.graph.graph import Graph, edge_key
from repro.graph.traversal import INF, multi_source_dijkstra
from repro.index.voronoi import VoronoiPartition


class WeightTable:
    """Mutable weight table shared with the partition under test."""

    def __init__(self, graph, default=1.0):
        self.values = {e: default for e in graph.edges()}

    def __call__(self, u, v):
        return self.values[edge_key(u, v)]

    def set(self, u, v, w):
        self.values[edge_key(u, v)] = w


def assert_matches_fresh(part, graph, weights):
    dist, seed, _ = multi_source_dijkstra(graph, part.seeds, weights)
    for v in graph.nodes():
        assert part.seed[v] == seed[v], f"node {v}: seed {part.seed[v]} != {seed[v]}"
        if dist[v] == INF:
            assert part.dist[v] == INF
        else:
            assert part.dist[v] == pytest.approx(dist[v], rel=1e-9)
    part.check_consistency()


class TestUpdateDecrease:
    def test_shortcut_pulls_far_nodes_closer(self):
        g = grid_graph(4, 4)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0], weights)
        assert part.dist[15] == 6.0
        weights.set(11, 15, 0.1)
        part.update_decrease(11, 15)
        assert_matches_fresh(part, g, weights)
        assert part.dist[15] == pytest.approx(5.1)

    def test_decrease_can_flip_seed_ownership(self):
        g = path_graph(5)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0, 4], weights)
        assert part.seed[2] == 0  # tie broken to smaller seed
        weights.set(3, 4, 0.1)  # node 3 now very close to seed 4
        part.update_decrease(3, 4)
        assert_matches_fresh(part, g, weights)

    def test_noop_when_edge_irrelevant(self):
        g = grid_graph(3, 3)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [4], weights)
        before = (list(part.dist), list(part.seed))
        # Decrease an edge between two equidistant non-tree neighbors barely.
        weights.set(0, 1, 0.999)
        touched = part.update_decrease(0, 1)
        assert_matches_fresh(part, g, weights)
        # The change is tiny and cannot re-route anything except possibly
        # its own endpoints.
        assert touched <= 2

    def test_touched_counts_bounded_by_component(self, medium_planted):
        graph, _ = medium_planted
        weights = WeightTable(graph)
        part = VoronoiPartition(graph, [0, 50, 100], weights)
        e = graph.edges()[10]
        weights.set(*e, 0.5)
        touched = part.update_decrease(*e)
        assert touched <= graph.n


class TestUpdateIncrease:
    def test_non_tree_edge_is_noop(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0], weights)
        # Edge (1,2) is not in the SPT rooted at 0.
        assert part.parent[1] == 0 and part.parent[2] == 0
        weights.set(1, 2, 10.0)
        touched = part.update_increase(1, 2)
        assert touched == 0
        assert_matches_fresh(part, g, weights)

    def test_tree_edge_reroutes_subtree(self):
        g = grid_graph(4, 4)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0], weights)
        # Find a tree edge and make it expensive.
        child = next(v for v in g.nodes() if part.parent[v] >= 0)
        parent = part.parent[child]
        weights.set(child, parent, 5.0)
        part.update_increase(child, parent)
        assert_matches_fresh(part, g, weights)

    def test_increase_can_move_cell_boundary(self):
        g = path_graph(7)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0, 6], weights)
        # Make the first hop from seed 0 expensive: nodes drift to seed 6.
        weights.set(0, 1, 10.0)
        part.update_increase(0, 1)
        assert_matches_fresh(part, g, weights)
        assert part.seed[1] == 6

    def test_increase_on_bridge_keeps_reachability(self):
        # Bridge edge in tree; increase must not orphan the far side.
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0], weights)
        weights.set(1, 2, 100.0)
        part.update_increase(1, 2)
        assert_matches_fresh(part, g, weights)
        assert part.dist[3] == pytest.approx(102.0)


class TestApplyWeightChange:
    def test_dispatch_directions(self):
        g = grid_graph(3, 3)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0], weights)
        old = weights(0, 1)
        weights.set(0, 1, 0.4)
        part.apply_weight_change(0, 1, old, 0.4)
        assert_matches_fresh(part, g, weights)
        weights.set(0, 1, 2.5)
        part.apply_weight_change(0, 1, 0.4, 2.5)
        assert_matches_fresh(part, g, weights)

    def test_equal_weight_is_noop(self):
        g = grid_graph(3, 3)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0], weights)
        assert part.apply_weight_change(0, 1, 1.0, 1.0) == 0


class TestRandomizedSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_long_random_update_sequence_matches_fresh(self, seed):
        rng = random.Random(seed)
        graph, _ = planted_partition(80, 4, p_in=0.4, p_out=0.03, seed=seed)
        weights = WeightTable(graph)
        seeds = rng.sample(list(graph.nodes()), 5)
        part = VoronoiPartition(graph, seeds, weights)
        edges = list(graph.edges())
        for step in range(60):
            u, v = rng.choice(edges)
            old = weights(u, v)
            new = old * rng.choice([0.3, 0.7, 1.5, 3.0])
            weights.set(u, v, new)
            part.apply_weight_change(u, v, old, new)
        assert_matches_fresh(part, graph, weights)

    def test_alternating_increase_decrease_same_edge(self):
        g = grid_graph(5, 5)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0, 24], weights)
        e = (6, 7)
        for new in [0.2, 4.0, 0.5, 8.0, 1.0, 0.1]:
            old = weights(*e)
            weights.set(*e, new)
            part.apply_weight_change(*e, old, new)
            assert_matches_fresh(part, g, weights)


class TestAbsorbScale:
    def test_scaling_preserves_structure(self):
        g = grid_graph(4, 4)
        weights = WeightTable(g)
        part = VoronoiPartition(g, [0, 15], weights)
        seeds_before = list(part.seed)
        dist_before = list(part.dist)
        factor = 3.7
        for key in weights.values:
            weights.values[key] *= factor
        part.absorb_scale(factor)
        assert part.seed == seeds_before
        for v in g.nodes():
            assert part.dist[v] == pytest.approx(dist_before[v] * factor)
        part.check_consistency()
