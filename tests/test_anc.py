"""Unit and integration tests for the ANC engines (ANCF / ANCO / ANCOR)."""

import pytest

from repro.core.activation import Activation
from repro.core.anc import ANCF, ANCO, ANCOR, ANCParams, make_engine
from repro.graph.generators import planted_partition
from repro.index.pyramid import PyramidIndex
from repro.workloads.streams import uniform_stream


@pytest.fixture
def graph_and_stream():
    graph, labels = planted_partition(80, 4, p_in=0.5, p_out=0.02, seed=9)
    stream = uniform_stream(graph, timestamps=8, fraction=0.1, seed=1)
    return graph, labels, stream


QUICK = ANCParams(rep=1, k=2, seed=0, rescale_every=64)


class TestFactory:
    def test_make_engine_by_name(self, graph_and_stream):
        graph, _, _ = graph_and_stream
        assert isinstance(make_engine("ANCF", graph, QUICK), ANCF)
        assert isinstance(make_engine("anco", graph, QUICK), ANCO)
        assert isinstance(make_engine("ANCOR", graph, QUICK), ANCOR)

    def test_unknown_name_rejected(self, graph_and_stream):
        graph, _, _ = graph_and_stream
        with pytest.raises(ValueError):
            make_engine("XYZ", graph)


class TestAgreementAtTimeZero:
    def test_all_engines_identical_before_stream(self, graph_and_stream):
        """The paper: 'They have the same performance at time 0'."""
        graph, _, _ = graph_and_stream
        engines = [cls(graph, QUICK) for cls in (ANCF, ANCO, ANCOR)]
        reference = engines[0].clusters()
        for engine in engines[1:]:
            assert engine.clusters() == reference


class TestANCO:
    def test_processes_stream_and_stays_consistent(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCO(graph, QUICK)
        engine.process_stream(stream)
        assert engine.activations_processed == len(stream)
        engine.index.check_consistency()

    def test_index_matches_weights_after_stream(self, graph_and_stream):
        """The online index must equal a fresh index built at the final
        weights (same pyramid seeds)."""
        graph, _, stream = graph_and_stream
        engine = ANCO(graph, QUICK)
        engine.process_stream(stream)
        fresh = PyramidIndex(
            graph, engine.index.weights_view(), k=QUICK.k, seed=QUICK.seed
        )
        for p_inc, p_ref in zip(engine.index.partitions(), fresh.partitions()):
            assert p_inc.seeds == p_ref.seeds
            assert p_inc.seed == p_ref.seed
            for v in graph.nodes():
                assert p_inc.dist[v] == pytest.approx(p_ref.dist[v], rel=1e-6)

    def test_cluster_queries_work_mid_stream(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCO(graph, QUICK)
        for i, act in enumerate(stream):
            engine.process(act)
            if i == len(stream) // 2:
                clusters = engine.clusters()
                assert sum(len(c) for c in clusters) == graph.n
                assert 0 in engine.cluster_of(0)

    def test_zoom_delegation(self, graph_and_stream):
        graph, _, _ = graph_and_stream
        engine = ANCO(graph, QUICK)
        level = engine.queries.sqrt_n_level()
        assert engine.zoom_in(level) >= level
        assert engine.zoom_out(level) <= level

    def test_now_tracks_stream_time(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCO(graph, QUICK)
        engine.process_stream(stream)
        assert engine.now == stream.span[1]

    def test_stats_snapshot(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCO(graph, QUICK)
        engine.process_stream(stream)
        stats = engine.stats()
        assert stats["activations"] == len(stream)
        assert stats["now"] == stream.span[1]
        assert stats["index_updates"] > 0
        assert stats["index_touched"] >= stats["index_updates"]
        assert stats["pyramids"] == QUICK.k
        assert sum(stats["roles"].values()) == graph.n


class TestANCOR:
    def test_reinforces_on_interval(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCOR(graph, QUICK, reinforce_interval=3.0)
        engine.process_stream(stream)
        assert engine._last_reinforce > 0.0

    def test_invalid_interval_rejected(self, graph_and_stream):
        graph, _, _ = graph_and_stream
        with pytest.raises(ValueError):
            ANCOR(graph, QUICK, reinforce_interval=0.0)

    def test_differs_from_anco_after_reinforcement(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        anco = ANCO(graph, QUICK)
        ancor = ANCOR(graph, QUICK, reinforce_interval=2.0)
        anco.process_stream(stream)
        ancor.process_stream(stream)
        w_o = anco.index.weights_view()
        w_r = ancor.index.weights_view()
        assert any(w_o[e] != pytest.approx(w_r[e]) for e in graph.edges())

    def test_index_consistent_after_reinforce(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCOR(graph, QUICK, reinforce_interval=2.0)
        engine.process_stream(stream)
        engine.index.check_consistency()


class TestANCF:
    def test_refresh_rebuilds_index(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCF(graph, QUICK)
        for act in stream:
            engine.process(act)
        assert engine._dirty
        engine.refresh()
        assert not engine._dirty
        engine.index.check_consistency()

    def test_query_triggers_refresh(self, graph_and_stream):
        graph, _, stream = graph_and_stream
        engine = ANCF(graph, QUICK)
        for act in stream:
            engine.process(act)
        clusters = engine.clusters()  # must auto-refresh
        assert not engine._dirty
        assert sum(len(c) for c in clusters) == graph.n

    def test_snapshot_independent_of_activation_order_within_t(self, graph_and_stream):
        """ANCF only depends on the accumulated activeness, so the order of
        same-timestamp activations must not matter."""
        graph, _, _ = graph_and_stream
        edges = list(graph.edges())[:10]
        a = ANCF(graph, QUICK)
        b = ANCF(graph, QUICK)
        for e in edges:
            a.process(Activation(e[0], e[1], 1.0))
        for e in reversed(edges):
            b.process(Activation(e[0], e[1], 1.0))
        assert a.clusters() == b.clusters()


class TestQualityOnActivationNetwork:
    def test_engines_track_community_biased_stream(self, graph_and_stream):
        """When activations follow planted communities, all ANC engines
        should cluster well at the best granularity."""
        from repro.evalm import score_clustering
        from repro.workloads.streams import community_biased_stream

        graph, labels, _ = graph_and_stream
        truth = {v: labels[v] for v in graph.nodes()}
        stream = community_biased_stream(
            graph, labels, timestamps=10, fraction=0.2, intra_bias=0.95, seed=3
        )
        params = ANCParams(rep=2, k=4, seed=0, eps=0.25, mu=2)
        engine = ANCO(graph, params)
        engine.process_stream(stream)
        best = 0.0
        for level in range(1, engine.queries.num_levels + 1):
            clusters = engine.clusters(level)
            best = max(best, score_clustering(clusters, truth)["nmi"])
        assert best > 0.5
