"""Unit tests for NMI / Purity / F1 and contingency plumbing."""

import math

import pytest

from repro.evalm.contingency import (
    clusters_to_labeling,
    filter_noise,
    labeling_to_clusters,
    restrict_to_common,
)
from repro.evalm.partition_metrics import (
    adjusted_rand_index,
    f1_score,
    nmi,
    purity,
    score_clustering,
)


PERFECT = {0: "a", 1: "a", 2: "b", 3: "b"}


class TestContingency:
    def test_clusters_to_labeling(self):
        lab = clusters_to_labeling([[0, 1], [2]])
        assert lab == {0: 0, 1: 0, 2: 1}

    def test_overlapping_clusters_rejected(self):
        with pytest.raises(ValueError):
            clusters_to_labeling([[0, 1], [1, 2]])

    def test_labeling_round_trip(self):
        clusters = [[0, 1], [2, 3], [4]]
        assert labeling_to_clusters(clusters_to_labeling(clusters)) == clusters

    def test_filter_noise(self):
        clusters = [[0, 1, 2], [3], [4, 5]]
        assert filter_noise(clusters, min_size=3) == [[0, 1, 2]]
        assert filter_noise(clusters, min_size=2) == [[0, 1, 2], [4, 5]]

    def test_restrict_to_common(self):
        pred = {0: 1, 1: 1}
        truth = {1: "x", 2: "x"}
        p, t = restrict_to_common(pred, truth)
        assert set(p) == {1} and set(t) == {1}


class TestNmi:
    def test_identical_partitions(self):
        assert nmi(PERFECT, PERFECT) == pytest.approx(1.0)

    def test_label_names_irrelevant(self):
        renamed = {0: 9, 1: 9, 2: 7, 3: 7}
        assert nmi(renamed, PERFECT) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        pred = {0: 0, 1: 1, 2: 0, 3: 1}
        truth = {0: "a", 1: "a", 2: "b", 3: "b"}
        assert nmi(pred, truth) == pytest.approx(0.0, abs=1e-12)

    def test_all_in_one_cluster_is_zero(self):
        pred = {v: 0 for v in range(4)}
        assert nmi(pred, PERFECT) == 0.0

    def test_both_trivial_is_one(self):
        pred = {v: 0 for v in range(4)}
        truth = {v: "x" for v in range(4)}
        assert nmi(pred, truth) == 1.0

    def test_empty_common_is_zero(self):
        assert nmi({0: 1}, {5: "x"}) == 0.0

    def test_symmetry(self):
        pred = {0: 0, 1: 0, 2: 1, 3: 1, 4: 1}
        truth = {0: "a", 1: "b", 2: "b", 3: "b", 4: "a"}
        # NMI is symmetric in its arguments (up to label namespaces).
        truth_as_int = {k: {"a": 0, "b": 1}[v] for k, v in truth.items()}
        assert nmi(pred, truth) == pytest.approx(nmi(truth_as_int, pred))

    def test_hand_computed_case(self):
        # pred {0,1},{2}; truth {0},{1,2}; n=3.
        pred = {0: 0, 1: 0, 2: 1}
        truth = {0: "x", 1: "y", 2: "y"}
        # Joint: (0,x)=1 (0,y)=1 (1,y)=1
        h = -(2 / 3) * math.log(2 / 3) - (1 / 3) * math.log(1 / 3)
        mutual = (
            (1 / 3) * math.log((1 / 3) / ((2 / 3) * (1 / 3)))
            + (1 / 3) * math.log((1 / 3) / ((2 / 3) * (2 / 3)))
            + (1 / 3) * math.log((1 / 3) / ((1 / 3) * (2 / 3)))
        )
        assert nmi(pred, truth) == pytest.approx(mutual / h)


class TestPurity:
    def test_perfect(self):
        assert purity(PERFECT, PERFECT) == 1.0

    def test_mixed_cluster(self):
        pred = {0: 0, 1: 0, 2: 0, 3: 0}
        truth = {0: "a", 1: "a", 2: "a", 3: "b"}
        assert purity(pred, truth) == pytest.approx(0.75)

    def test_singletons_are_pure(self):
        pred = {v: v for v in range(4)}
        assert purity(pred, PERFECT) == 1.0

    def test_empty_is_zero(self):
        assert purity({}, {}) == 0.0


class TestF1:
    def test_perfect(self):
        assert f1_score(PERFECT, PERFECT) == pytest.approx(1.0)

    def test_half_split(self):
        # Truth one cluster of 4; prediction two clusters of 2.
        pred = {0: 0, 1: 0, 2: 1, 3: 1}
        truth = {v: "a" for v in range(4)}
        # truth->pred best F1 = 2*(0.5*1)/(1.5) = 2/3; pred->truth best = same.
        assert f1_score(pred, truth) == pytest.approx(2 / 3)

    def test_empty(self):
        assert f1_score({}, {}) == 0.0

    def test_range(self, medium_planted):
        graph, labels = medium_planted
        truth = {v: labels[v] for v in graph.nodes()}
        pred = {v: v % 7 for v in graph.nodes()}
        score = f1_score(pred, truth)
        assert 0.0 <= score <= 1.0


class TestScoreClustering:
    def test_noise_filter_applied(self):
        clusters = [[0, 1, 2, 3], [4], [5]]
        truth = {v: 0 if v < 4 else 1 for v in range(6)}
        scores = score_clustering(clusters, truth, min_size=3)
        assert scores["clusters"] == 1.0
        # Only nodes 0-3 scored; they match truth exactly within coverage.
        assert scores["purity"] == 1.0

    def test_returns_all_keys(self, medium_planted):
        graph, labels = medium_planted
        truth = {v: labels[v] for v in graph.nodes()}
        scores = score_clustering([[v for v in graph.nodes()]], truth)
        assert set(scores) == {"nmi", "purity", "f1", "ari", "clusters"}


class TestAdjustedRandIndex:
    def test_identical_is_one(self):
        assert adjusted_rand_index(PERFECT, PERFECT) == pytest.approx(1.0)

    def test_label_names_irrelevant(self):
        renamed = {0: "x", 1: "x", 2: "y", 3: "y"}
        assert adjusted_rand_index(renamed, PERFECT) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        pred = {0: 0, 1: 1, 2: 0, 3: 1}
        assert abs(adjusted_rand_index(pred, PERFECT)) < 0.5

    def test_single_node(self):
        assert adjusted_rand_index({0: 0}, {0: "a"}) == 1.0

    def test_empty(self):
        assert adjusted_rand_index({}, {}) == 0.0

    def test_hand_computed(self):
        # Classic example: pred {0,1},{2,3,4}; truth {0,1,2},{3,4}.
        pred = {0: 0, 1: 0, 2: 1, 3: 1, 4: 1}
        truth = {0: "a", 1: "a", 2: "a", 3: "b", 4: "b"}
        # joint pairs: (0,a)=2 ->1, (1,a)=1 ->0, (1,b)=2 ->1 : sum=2
        # pred pairs: C(2,2)+C(3,2)=1+3=4 ; truth: C(3,2)+C(2,2)=3+1=4
        # total C(5,2)=10 ; expected=16/10=1.6 ; max=4
        expected = (2 - 1.6) / (4 - 1.6)
        assert adjusted_rand_index(pred, truth) == pytest.approx(expected)

    def test_symmetric(self, medium_planted):
        graph, labels = medium_planted
        truth = {v: labels[v] for v in graph.nodes()}
        pred = {v: v % 5 for v in graph.nodes()}
        assert adjusted_rand_index(pred, truth) == pytest.approx(
            adjusted_rand_index(truth, pred)
        )
