"""The five qualitative update scenarios of the paper's Example 6 (Fig 3).

Each case builds a small weighted graph where the expected behaviour of
Update-Decrease / Update-Increase is fully predictable, mirroring the
paper's walk-through on its Figure 2(e) partition:

(a) a decrease propagates improvements through a chain of nodes;
(b) an increase on a leaf tree edge affects only that leaf;
(c) an increase on a non-tree edge affects nothing;
(d) a large increase flips a node to the other seed's cell;
(e) a subsequent large decrease flips it back.
"""

import pytest

from repro.graph.graph import Graph, edge_key
from repro.index.voronoi import VoronoiPartition


class WeightTable:
    def __init__(self, weights):
        self.values = dict(weights)

    def __call__(self, u, v):
        return self.values[edge_key(u, v)]

    def set(self, u, v, w):
        self.values[edge_key(u, v)] = w


@pytest.fixture
def chain_partition():
    """0-1-2-3-4 path with seed 0 plus a heavy shortcut 0-4."""
    g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    weights = WeightTable({
        (0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0, (3, 4): 1.0, (0, 4): 10.0,
    })
    return g, weights, VoronoiPartition(g, [0], weights)


class TestCaseA_DecreasePropagates:
    def test_shortcut_decrease_reroutes_chain_tail(self, chain_partition):
        g, weights, part = chain_partition
        assert part.dist[4] == 4.0  # via the chain
        assert part.parent[4] == 3
        weights.set(0, 4, 0.5)
        touched = part.update_decrease(0, 4)
        # Node 4 now comes directly from the seed, and node 3 improves
        # through 4 (0.5 + 1.0 = 1.5 < 3.0): the improvement propagated.
        assert part.dist[4] == 0.5
        assert part.parent[4] == 0
        assert part.dist[3] == 1.5
        assert part.parent[3] == 4
        assert touched >= 2
        part.check_consistency()


class TestCaseB_IncreaseAffectsOnlyLeaf:
    def test_leaf_edge_increase_touches_one_node(self):
        # Star from seed 0; increasing one spoke affects only its leaf.
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        weights = WeightTable({(0, 1): 1.0, (0, 2): 1.0, (0, 3): 1.0})
        part = VoronoiPartition(g, [0], weights)
        weights.set(0, 3, 2.0)
        part.update_increase(0, 3)
        assert part.dist[3] == 2.0
        assert part.dist[1] == 1.0 and part.dist[2] == 1.0
        assert part.last_affected == {3}  # only the reset leaf
        part.check_consistency()


class TestCaseC_NonTreeIncreaseIsFree:
    def test_non_tree_edge_increase_touches_nothing(self, chain_partition):
        g, weights, part = chain_partition
        # The shortcut 0-4 (weight 10) is not on the tree.
        before = (list(part.dist), list(part.seed), list(part.parent))
        weights.set(0, 4, 50.0)
        touched = part.update_increase(0, 4)
        assert touched == 0
        assert (list(part.dist), list(part.seed), list(part.parent)) == before


@pytest.fixture
def two_seed_partition():
    """Fig 3(d)/(e) shape: node 2 sits between seeds 0 and 4."""
    g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    weights = WeightTable({(0, 1): 1.0, (1, 2): 1.0, (2, 3): 2.0, (3, 4): 1.0})
    return g, weights, VoronoiPartition(g, [0, 4], weights)


class TestCaseD_IncreaseFlipsSeed:
    def test_big_increase_hands_node_to_other_seed(self, two_seed_partition):
        g, weights, part = two_seed_partition
        assert part.seed[2] == 0  # dist 2 via seed 0 vs 3 via seed 4
        weights.set(1, 2, 6.0)
        part.update_increase(1, 2)
        # Now via seed 0 it would be 7; via seed 4 it is 3.
        assert part.seed[2] == 4
        assert part.dist[2] == 3.0
        part.check_consistency()


class TestCaseE_DecreaseFlipsBack:
    def test_big_decrease_reclaims_node(self, two_seed_partition):
        g, weights, part = two_seed_partition
        # First push node 2 to seed 4 (case d)...
        weights.set(1, 2, 6.0)
        part.update_increase(1, 2)
        assert part.seed[2] == 4
        # ...then make the edge cheap again: seed 0 reclaims it.
        weights.set(1, 2, 0.2)
        part.update_decrease(1, 2)
        assert part.seed[2] == 0
        assert part.dist[2] == pytest.approx(1.2)
        part.check_consistency()

    def test_reclaim_can_cascade_downstream(self, two_seed_partition):
        """Successive decreases build a cheap corridor from seed 0; the
        final one flips node 3 across the cell boundary."""
        g, weights, part = two_seed_partition
        for e, w in [((0, 1), 0.1), ((1, 2), 0.1)]:
            weights.set(*e, w)
            part.update_decrease(*e)
        assert part.dist[2] == pytest.approx(0.2)
        assert part.seed[3] == 4  # still: 0.2 + 2.0 > 1.0
        weights.set(2, 3, 0.5)
        part.update_decrease(2, 3)
        # Via the corridor: 0.1 + 0.1 + 0.5 = 0.7 < 1.0 via seed 4.
        assert part.seed[3] == 0
        assert part.dist[3] == pytest.approx(0.7)
        part.check_consistency()
