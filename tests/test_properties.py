"""Property-based tests (hypothesis) for the paper's core invariants.

* the global decay factor machinery always agrees with the naive
  Equation 1 recomputation, across arbitrary streams and rescale timings;
* σ is invariant to the anchored/actual representation (Lemma 3 / NeuM);
* incremental Voronoi maintenance always agrees with a fresh multi-source
  Dijkstra (Lemmas 11-12), for arbitrary weight-change sequences;
* power/even clustering always emit partitions; voting is symmetric.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.activation import Activation, naive_activeness
from repro.core.decay import Activeness, DecayClock, ValueKind
from repro.core.similarity import ActiveSimilarity, naive_sigma
from repro.graph.generators import erdos_renyi, planted_partition
from repro.graph.graph import Graph, edge_key
from repro.graph.traversal import INF, multi_source_dijkstra
from repro.index.clustering import even_clustering, power_clustering
from repro.index.pyramid import PyramidIndex
from repro.index.voronoi import VoronoiPartition

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Strategy helpers
# ----------------------------------------------------------------------

@st.composite
def small_graph(draw):
    """Connected random graph with 5-40 nodes."""
    n = draw(st.integers(min_value=5, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.08, max_value=0.4))
    return erdos_renyi(n, p, seed=seed, connect=True)


@st.composite
def activation_times(draw, max_events=30):
    """A non-decreasing sequence of timestamps."""
    deltas = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=max_events,
        )
    )
    times, t = [], 0.0
    for d in deltas:
        t += d
        times.append(t)
    return times


# ----------------------------------------------------------------------
# Decay invariants
# ----------------------------------------------------------------------

class TestDecayProperties:
    @SLOW
    @given(
        times=activation_times(),
        lam=st.floats(min_value=0.0, max_value=1.0),
        rescale_every=st.integers(min_value=1, max_value=7),
        edge_pick=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=30),
    )
    def test_activeness_always_matches_equation1(self, times, lam, rescale_every, edge_pick):
        edges = [(0, 1), (1, 2), (0, 2)]
        clock = DecayClock(lam, rescale_every=rescale_every)
        act = Activeness(clock)
        stream = []
        for t, pick in zip(times, edge_pick):
            e = edges[pick % 3]
            stream.append(Activation(e[0], e[1], t))
            act.on_activation(e[0], e[1], t)
            clock.note_activation()
        final_t = times[min(len(times), len(edge_pick)) - 1]
        for e in edges:
            expected = naive_activeness(stream, e, final_t, lam)
            assert act.value(*e) == pytest.approx(expected, rel=1e-8, abs=1e-12)

    @SLOW
    @given(
        lam=st.floats(min_value=0.01, max_value=2.0),
        t1=st.floats(min_value=0.1, max_value=50.0),
        value=st.floats(min_value=0.001, max_value=1000.0),
    )
    def test_posm_negm_duality(self, lam, t1, value):
        """1/PosM value always equals the NegM of the reciprocal."""
        clock = DecayClock(lam)
        pos = clock.register(ValueKind.POSITIVE)
        neg = clock.register(ValueKind.NEGATIVE)
        pos.set_actual(0, 1, value)
        neg.set_actual(0, 1, 1.0 / value)
        clock.advance(t1)
        assert 1.0 / pos.actual(0, 1) == pytest.approx(neg.actual(0, 1), rel=1e-9)
        clock.rescale()
        assert 1.0 / pos.actual(0, 1) == pytest.approx(neg.actual(0, 1), rel=1e-9)

    @SLOW
    @given(
        lam=st.floats(min_value=0.0, max_value=1.0),
        advances=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=10),
        rescale_at=st.sets(st.integers(min_value=0, max_value=9)),
    )
    def test_rescale_never_changes_actual_values(self, lam, advances, rescale_at):
        clock = DecayClock(lam)
        store = clock.register(ValueKind.POSITIVE)
        store.set_actual(0, 1, 42.0)
        t = 0.0
        for i, d in enumerate(advances):
            t += d
            clock.advance(t)
            expected = 42.0 * math.exp(-lam * t)
            assert store.actual(0, 1) == pytest.approx(expected, rel=1e-9)
            if i in rescale_at:
                clock.rescale()
                assert store.actual(0, 1) == pytest.approx(expected, rel=1e-9)


# ----------------------------------------------------------------------
# σ invariants (Lemma 3)
# ----------------------------------------------------------------------

class TestSigmaProperties:
    @SLOW
    @given(graph=small_graph(), data=st.data())
    def test_sigma_matches_naive_and_is_bounded(self, graph, data):
        clock = DecayClock(0.1)
        act = Activeness(clock, initial={e: 1.0 for e in graph.edges()})
        sim = ActiveSimilarity(graph, act, eps=0.3, mu=2)
        # Random activations at increasing times.
        n_acts = data.draw(st.integers(min_value=0, max_value=15))
        t = 0.0
        for _ in range(n_acts):
            e = data.draw(st.sampled_from(list(graph.edges())))
            t += data.draw(st.floats(min_value=0.0, max_value=1.0))
            _, delta = act.on_activation(e[0], e[1], t)
            sim.on_activation_delta(e[0], e[1], delta)
        actual = {e: act.value(*e) for e in graph.edges()}
        for u, v in graph.edges():
            s = sim.sigma(u, v)
            assert 0.0 <= s <= 1.0 + 1e-9
            assert s == pytest.approx(naive_sigma(graph, actual, u, v), rel=1e-8, abs=1e-12)


# ----------------------------------------------------------------------
# Voronoi maintenance (Lemmas 11-12)
# ----------------------------------------------------------------------

class TestVoronoiProperties:
    @SLOW
    @given(
        graph=small_graph(),
        data=st.data(),
    )
    def test_incremental_always_matches_fresh_dijkstra(self, graph, data):
        rng_seed = data.draw(st.integers(min_value=0, max_value=999))
        rng = random.Random(rng_seed)
        n_seeds = data.draw(st.integers(min_value=1, max_value=max(1, graph.n // 3)))
        seeds = rng.sample(list(graph.nodes()), n_seeds)
        weights = {e: 1.0 for e in graph.edges()}

        def weight(u, v):
            return weights[edge_key(u, v)]

        part = VoronoiPartition(graph, seeds, weight)
        n_updates = data.draw(st.integers(min_value=1, max_value=20))
        edges = list(graph.edges())
        for _ in range(n_updates):
            e = rng.choice(edges)
            factor = rng.choice([0.25, 0.5, 0.8, 1.25, 2.0, 4.0])
            old = weights[e]
            weights[e] = old * factor
            part.apply_weight_change(e[0], e[1], old, weights[e])
        dist, seed_arr, _ = multi_source_dijkstra(graph, seeds, weight)
        assert part.seed == seed_arr
        for v in graph.nodes():
            if dist[v] == INF:
                assert part.dist[v] == INF
            else:
                assert part.dist[v] == pytest.approx(dist[v], rel=1e-9)
        part.check_consistency()


# ----------------------------------------------------------------------
# Clustering output invariants
# ----------------------------------------------------------------------

class TestClusteringProperties:
    @SLOW
    @given(graph=small_graph(), k=st.integers(min_value=1, max_value=4),
           idx_seed=st.integers(min_value=0, max_value=99))
    def test_clusterings_are_partitions_at_every_level(self, graph, k, idx_seed):
        weights = {e: 1.0 for e in graph.edges()}
        index = PyramidIndex(graph, weights, k=k, seed=idx_seed)
        for level in range(1, index.num_levels + 1):
            for clusters in (even_clustering(index, level), power_clustering(index, level)):
                flat = sorted(v for c in clusters for v in c)
                assert flat == list(graph.nodes())

    @SLOW
    @given(graph=small_graph(), idx_seed=st.integers(min_value=0, max_value=99))
    def test_voting_symmetric_and_monotone_in_level1(self, graph, idx_seed):
        weights = {e: 1.0 for e in graph.edges()}
        index = PyramidIndex(graph, weights, k=3, seed=idx_seed)
        for u, v in graph.edges():
            for level in (1, index.num_levels):
                assert index.vote_count(u, v, level) == index.vote_count(v, u, level)
        # Level 1: one seed per pyramid, so all edges in the (connected)
        # graph get full votes.
        for u, v in graph.edges():
            assert index.vote_count(u, v, 1) == 3


# ----------------------------------------------------------------------
# Sliding-window model (related-work substrate)
# ----------------------------------------------------------------------

class TestWindowProperties:
    @SLOW
    @given(
        window=st.floats(min_value=0.5, max_value=10.0),
        times=activation_times(max_events=40),
        picks=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=40),
    )
    def test_window_counts_match_brute_force(self, window, times, picks):
        from repro.core.windows import SlidingWindowActiveness

        edges = [(0, 1), (1, 2), (0, 2)]
        graph = Graph(3, edges)
        model = SlidingWindowActiveness(graph, window=window)
        events = []
        for t, pick in zip(times, picks):
            e = edges[pick % 3]
            model.on_activation(e[0], e[1], t)
            events.append((e, t))
        now = events[-1][1]
        for edge in edges:
            expected = sum(
                1 for e, t in events if e == edge and t > now - window
            )
            assert model.value(*edge) == expected


# ----------------------------------------------------------------------
# End-to-end engine invariant
# ----------------------------------------------------------------------

class TestEngineProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        stream_seed=st.integers(min_value=0, max_value=500),
        n_acts=st.integers(min_value=1, max_value=40),
        rescale_every=st.integers(min_value=2, max_value=16),
    )
    def test_online_index_equals_fresh_rebuild(self, stream_seed, n_acts, rescale_every):
        from repro.core.anc import ANCO, ANCParams

        graph, _ = planted_partition(40, 3, p_in=0.4, p_out=0.05, seed=7)
        params = ANCParams(rep=0, k=2, seed=1, rescale_every=rescale_every, mu=2)
        engine = ANCO(graph, params)
        rng = random.Random(stream_seed)
        edges = list(graph.edges())
        t = 0.0
        for _ in range(n_acts):
            t += rng.random()
            e = rng.choice(edges)
            engine.process(Activation(e[0], e[1], t))
        fresh = PyramidIndex(graph, engine.index.weights_view(), k=2, seed=1)
        for p_inc, p_ref in zip(engine.index.partitions(), fresh.partitions()):
            assert p_inc.seed == p_ref.seed
            for v in graph.nodes():
                assert p_inc.dist[v] == pytest.approx(p_ref.dist[v], rel=1e-6)
