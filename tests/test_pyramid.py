"""Unit tests for the pyramid index P (Section V-A)."""


import pytest

from repro.index.pyramid import PyramidIndex, levels_for, seeds_at_level


@pytest.fixture
def weighted_graph(medium_planted):
    graph, _ = medium_planted
    weights = {e: 1.0 for e in graph.edges()}
    return graph, weights


class TestLevelArithmetic:
    def test_levels_for(self):
        assert levels_for(1) == 1
        assert levels_for(2) == 1
        assert levels_for(13) == 4  # the paper's Figure 2 example
        assert levels_for(16) == 4
        assert levels_for(17) == 5

    def test_levels_for_invalid(self):
        with pytest.raises(ValueError):
            levels_for(0)

    def test_seeds_at_level(self):
        # 2^{l-1} seeds per the Figure 2 example (1, 2, 4, 8...).
        assert seeds_at_level(1, 13) == 1
        assert seeds_at_level(2, 13) == 2
        assert seeds_at_level(3, 13) == 4
        assert seeds_at_level(4, 13) == 8

    def test_seeds_capped_at_n(self):
        assert seeds_at_level(10, 13) == 13

    def test_level_must_be_positive(self):
        with pytest.raises(ValueError):
            seeds_at_level(0, 13)


class TestConstruction:
    def test_builds_k_pyramids_with_log_levels(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=3, seed=0)
        assert len(index.pyramids) == 3
        assert index.num_levels == levels_for(graph.n)
        for pyramid in index.pyramids:
            for level, partition in pyramid.levels.items():
                assert len(partition.seeds) == seeds_at_level(level, graph.n)

    def test_deterministic_for_seed(self, weighted_graph):
        graph, weights = weighted_graph
        a = PyramidIndex(graph, weights, k=2, seed=5)
        b = PyramidIndex(graph, weights, k=2, seed=5)
        for pa, pb in zip(a.partitions(), b.partitions()):
            assert pa.seeds == pb.seeds
            assert pa.seed == pb.seed

    def test_different_seeds_differ(self, weighted_graph):
        graph, weights = weighted_graph
        a = PyramidIndex(graph, weights, k=2, seed=1)
        b = PyramidIndex(graph, weights, k=2, seed=2)
        assert any(
            pa.seeds != pb.seeds for pa, pb in zip(a.partitions(), b.partitions())
        )

    def test_missing_weights_rejected(self, medium_planted):
        graph, _ = medium_planted
        with pytest.raises(ValueError):
            PyramidIndex(graph, {}, k=2)

    def test_nonpositive_weights_rejected(self, weighted_graph):
        graph, weights = weighted_graph
        bad = dict(weights)
        bad[graph.edges()[0]] = 0.0
        with pytest.raises(ValueError):
            PyramidIndex(graph, bad, k=2)

    def test_parameter_validation(self, weighted_graph):
        graph, weights = weighted_graph
        with pytest.raises(ValueError):
            PyramidIndex(graph, weights, k=0)
        with pytest.raises(ValueError):
            PyramidIndex(graph, weights, k=2, support=0.0)

    def test_weights_copied_not_aliased(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=1)
        weights[graph.edges()[0]] = 99.0
        assert index.weight(*graph.edges()[0]) == 1.0


class TestUpdates:
    def test_update_matches_rebuild(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=2, seed=3)
        e = graph.edges()[7]
        index.update_edge_weight(*e, 0.25)
        reference = PyramidIndex(graph, index.weights_view(), k=2, seed=3)
        for p_upd, p_ref in zip(index.partitions(), reference.partitions()):
            assert p_upd.seed == p_ref.seed
            for v in graph.nodes():
                assert p_upd.dist[v] == pytest.approx(p_ref.dist[v], rel=1e-9)

    def test_update_counts_accumulate(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=2, seed=3)
        assert index.update_count == 0
        index.update_edge_weight(*graph.edges()[0], 0.5)
        assert index.update_count == 1
        assert index.total_touched > 0

    def test_unchanged_weight_is_noop(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=2, seed=3)
        assert index.update_edge_weight(*graph.edges()[0], 1.0) == 0
        assert index.update_count == 0

    def test_nonpositive_update_rejected(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=1)
        with pytest.raises(ValueError):
            index.update_edge_weight(*graph.edges()[0], -1.0)

    def test_on_rescale_preserves_partitions(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=2, seed=3)
        seeds_before = [list(p.seed) for p in index.partitions()]
        index.on_rescale(0.5)  # weights and dists scale by 2
        assert [list(p.seed) for p in index.partitions()] == seeds_before
        index.check_consistency()

    def test_set_all_weights_then_rebuild(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=2, seed=3)
        new_weights = {e: 2.0 for e in graph.edges()}
        index.set_all_weights(new_weights)
        index.rebuild()
        index.check_consistency()
        assert index.weight(*graph.edges()[0]) == 2.0


class TestVoting:
    def test_vote_count_range(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=4, seed=0)
        for u, v in list(graph.edges())[:20]:
            for level in (1, index.num_levels):
                count = index.vote_count(u, v, level)
                assert 0 <= count <= 4

    def test_level1_connected_graph_all_agree(self, weighted_graph):
        """At level 1 there is one seed per pyramid: every reachable pair
        shares it, so every edge of a connected graph votes 1."""
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=3, seed=0)
        for u, v in list(graph.edges())[:20]:
            assert index.vote_count(u, v, 1) == 3
            assert index.same_cluster_vote(u, v, 1)

    def test_vote_symmetry(self, weighted_graph):
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=4, seed=0)
        level = index.num_levels
        for u, v in list(graph.edges())[:20]:
            assert index.vote_count(u, v, level) == index.vote_count(v, u, level)

    def test_support_threshold_semantics(self, weighted_graph):
        """Example 4's arithmetic: with k=2, θ=0.7, 2 votes pass, 1 fails."""
        graph, weights = weighted_graph
        index = PyramidIndex(graph, weights, k=2, seed=0, support=0.7)
        threshold = index.support * index.k
        assert 2 >= threshold
        assert 1 < threshold


class TestPaperExample3:
    """The paper's Figure 2 / Example 3 structure: a 13-node graph
    indexed with k=2 pyramids of ⌈log₂ 13⌉ = 4 granularity levels, with
    1, 2, 4, 8 seeds per level."""

    def test_figure2_index_shape(self, paper_figure2_graph):
        weights = {e: 1.0 for e in paper_figure2_graph.edges()}
        index = PyramidIndex(paper_figure2_graph, weights, k=2, seed=0)
        assert index.num_levels == 4
        for pyramid in index.pyramids:
            assert [len(pyramid.partition(l).seeds) for l in range(1, 5)] == [
                1, 2, 4, 8,
            ]

    def test_level1_single_tree_spans_component(self, paper_figure2_graph):
        """Example 3: at level 1 the only seed roots a shortest path tree
        containing every node of (its component of) the graph."""
        weights = {e: 1.0 for e in paper_figure2_graph.edges()}
        index = PyramidIndex(paper_figure2_graph, weights, k=2, seed=0)
        for pyramid in index.pyramids:
            part = pyramid.partition(1)
            root = part.seeds[0]
            reachable = {v for v in paper_figure2_graph.nodes() if part.seed[v] >= 0}
            assert set(part.subtree(root)) == reachable

    def test_level2_partitions_cover_disjointly(self, paper_figure2_graph):
        """Example 3: at level 2 each node exclusively belongs to one of
        the two seeds' partitions."""
        weights = {e: 1.0 for e in paper_figure2_graph.edges()}
        index = PyramidIndex(paper_figure2_graph, weights, k=2, seed=0)
        for pyramid in index.pyramids:
            part = pyramid.partition(2)
            cells = part.cells()
            covered = sorted(v for cell in cells.values() for v in cell)
            reachable = sorted(
                v for v in paper_figure2_graph.nodes() if part.seed[v] >= 0
            )
            assert covered == reachable


class TestMemory:
    def test_memory_grows_with_k(self, weighted_graph):
        graph, weights = weighted_graph
        m2 = PyramidIndex(graph, weights, k=2, seed=0).memory_cost()
        m4 = PyramidIndex(graph, weights, k=4, seed=0).memory_cost()
        assert m4 > m2
        # Linear in k up to the shared weight table.
        assert m4 < 2.5 * m2
