"""Unit tests for the Graph substrate."""

import pytest

from repro.graph.graph import Graph, GraphBuilder, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            edge_key(2, 2)


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert list(g.nodes()) == []

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_nodes_without_edges(self):
        g = Graph(4)
        assert g.n == 4
        assert all(g.degree(v) == 0 for v in g.nodes())

    def test_edges_from_constructor(self):
        g = Graph(3, [(0, 1), (2, 1)])
        assert g.m == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 2)

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_add_edge_returns_newness(self):
        g = Graph(3)
        assert g.add_edge(0, 1) is True
        assert g.add_edge(1, 0) is False

    def test_out_of_range_edge_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)


class TestAdjacency:
    def test_neighbors_sorted(self):
        g = Graph(5, [(0, 4), (0, 2), (0, 1), (0, 3)])
        assert list(g.neighbors(0)) == [1, 2, 3, 4]

    def test_degree(self, triangle):
        assert all(triangle.degree(v) == 2 for v in triangle.nodes())

    def test_edges_are_canonical(self):
        g = Graph(3, [(2, 0), (1, 0)])
        assert all(u < v for u, v in g.edges())

    def test_has_node(self):
        g = Graph(3)
        assert g.has_node(0) and g.has_node(2)
        assert not g.has_node(3) and not g.has_node(-1)

    def test_has_edge_self(self, triangle):
        assert not triangle.has_edge(1, 1)


class TestCommonNeighbors:
    def test_triangle(self, triangle):
        assert triangle.common_neighbors(0, 1) == [2]

    def test_no_common(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.common_neighbors(0, 2) == []

    def test_skewed_degrees_use_binary_search(self):
        # Hub with many leaves; two hubs share all leaves.
        n = 100
        g = Graph(n + 2)
        for leaf in range(2, n + 2):
            g.add_edge(0, leaf)
            g.add_edge(1, leaf)
        g.add_edge(0, 1)
        common = g.common_neighbors(0, 1)
        assert common == list(range(2, n + 2))

    def test_symmetric(self, square_with_diagonal):
        g = square_with_diagonal
        assert g.common_neighbors(1, 3) == g.common_neighbors(3, 1)


class TestExclusiveNeighbors:
    def test_excludes_other_endpoint(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (0, 3)])
        # N(0) = {1,2,3}; exclusive wrt 1: N(0) \ (N(1) ∪ {1}) = {3}
        assert g.exclusive_neighbors(0, 1) == [3]

    def test_asymmetric(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (0, 3)])
        assert g.exclusive_neighbors(1, 0) == []


class TestCopySubgraph:
    def test_copy_is_independent(self, triangle):
        g2 = triangle.copy()
        g2.add_edge(0, 1)  # duplicate, no-op
        g3 = Graph(4, [(0, 1)])
        assert triangle == triangle.copy()
        assert triangle != g3

    def test_copy_mutation_isolated(self):
        g = Graph(4, [(0, 1)])
        g2 = g.copy()
        g2.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert g2.has_edge(2, 3)

    def test_subgraph_induced(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub, mapping = g.subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.m == 2  # (0,1) and (1,2) survive
        assert mapping == {0: 0, 1: 1, 2: 2}

    def test_subgraph_relabels_densely(self):
        g = Graph(6, [(2, 5), (2, 4)])
        sub, mapping = g.subgraph([2, 4, 5])
        assert sub.n == 3
        assert sub.has_edge(mapping[2], mapping[5])
        assert sub.has_edge(mapping[2], mapping[4])


class TestGraphBuilder:
    def test_string_labels(self):
        b = GraphBuilder()
        b.add_edge("alice", "bob")
        b.add_edge("bob", "carol")
        g, names = b.build()
        assert g.n == 3
        assert g.m == 2
        assert names == ["alice", "bob", "carol"]

    def test_ids_first_seen_order(self):
        b = GraphBuilder()
        assert b.node_id("x") == 0
        assert b.node_id("y") == 1
        assert b.node_id("x") == 0

    def test_self_loop_rejected(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_edge("a", "a")

    def test_duplicate_edges_collapse(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        b.add_edge("b", "a")
        g, _ = b.build()
        assert g.m == 1
