"""Cross-validation of core algorithms against networkx.

networkx is an independent implementation; these tests catch systematic
errors a self-consistent test suite could miss: shortest distances,
connected components, modularity, Voronoi assignments and Louvain
quality are all checked against (or bounded by) the networkx results.
"""

import random

import networkx as nx
import pytest

from repro.baselines.louvain import louvain
from repro.evalm.structural import modularity
from repro.graph.graph import Graph, edge_key
from repro.graph.traversal import (
    INF,
    connected_components,
    dijkstra,
    multi_source_dijkstra,
)
from repro.index.voronoi import VoronoiPartition


def to_networkx(graph: Graph, weights=None) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        w = 1.0 if weights is None else weights[(u, v)]
        g.add_edge(u, v, weight=w)
    return g


@pytest.fixture
def weighted_case(medium_planted):
    graph, labels = medium_planted
    rng = random.Random(7)
    weights = {e: rng.uniform(0.1, 5.0) for e in graph.edges()}
    return graph, labels, weights


class TestShortestPaths:
    def test_dijkstra_matches_networkx(self, weighted_case):
        graph, _, weights = weighted_case
        nxg = to_networkx(graph, weights)
        dist, _ = dijkstra(graph, 0, lambda u, v: weights[edge_key(u, v)])
        nx_dist = nx.single_source_dijkstra_path_length(nxg, 0, weight="weight")
        for v in graph.nodes():
            if v in nx_dist:
                assert dist[v] == pytest.approx(nx_dist[v], rel=1e-9)
            else:
                assert dist[v] == INF

    def test_multi_source_matches_networkx(self, weighted_case):
        graph, _, weights = weighted_case
        nxg = to_networkx(graph, weights)
        sources = [0, 40, 90]
        dist, seed, _ = multi_source_dijkstra(
            graph, sources, lambda u, v: weights[edge_key(u, v)]
        )
        nx_dist = nx.multi_source_dijkstra_path_length(
            nxg, sources, weight="weight"
        )
        for v in graph.nodes():
            assert dist[v] == pytest.approx(nx_dist[v], rel=1e-9)
            # The assigned seed must realize the minimum distance.
            per_seed = nx.single_source_dijkstra_path_length(
                nxg, seed[v], weight="weight"
            )
            assert per_seed[v] == pytest.approx(dist[v], rel=1e-9)

    def test_voronoi_partition_matches_networkx(self, weighted_case):
        graph, _, weights = weighted_case
        nxg = to_networkx(graph, weights)
        seeds = [3, 77, 120]
        part = VoronoiPartition(
            graph, seeds, lambda u, v: weights[edge_key(u, v)]
        )
        cells = nx.voronoi_cells(nxg, set(seeds), weight="weight")
        for s in seeds:
            ours = {v for v in graph.nodes() if part.seed[v] == s}
            # Ties may be assigned differently; compare distances instead.
            nx_dist = nx.multi_source_dijkstra_path_length(
                nxg, seeds, weight="weight"
            )
            for v in ours:
                assert part.dist[v] == pytest.approx(nx_dist[v], rel=1e-9)


class TestComponents:
    def test_components_match(self):
        g = Graph(10, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)])
        nxg = to_networkx(g)
        ours = {frozenset(c) for c in connected_components(g)}
        theirs = {frozenset(c) for c in nx.connected_components(nxg)}
        assert ours == theirs


class TestModularity:
    def test_matches_networkx_unweighted(self, medium_planted):
        graph, labels = medium_planted
        clusters = {}
        for v, lab in enumerate(labels):
            clusters.setdefault(lab, set()).add(v)
        communities = list(clusters.values())
        nxg = to_networkx(graph)
        ours = modularity(graph, [sorted(c) for c in communities])
        theirs = nx.community.modularity(nxg, communities)
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_matches_networkx_weighted(self, weighted_case):
        graph, labels, weights = weighted_case
        clusters = {}
        for v, lab in enumerate(labels):
            clusters.setdefault(lab, set()).add(v)
        communities = list(clusters.values())
        nxg = to_networkx(graph, weights)
        ours = modularity(graph, [sorted(c) for c in communities], weights)
        theirs = nx.community.modularity(nxg, communities, weight="weight")
        assert ours == pytest.approx(theirs, rel=1e-9)


class TestLouvain:
    def test_quality_comparable_to_networkx_louvain(self, medium_planted):
        """Our Louvain should reach modularity within a few percent of
        networkx's implementation on the same graph."""
        graph, _ = medium_planted
        nxg = to_networkx(graph)
        ours = louvain(graph, seed=0)
        q_ours = modularity(graph, ours)
        theirs = nx.community.louvain_communities(nxg, seed=0)
        q_theirs = nx.community.modularity(nxg, theirs)
        assert q_ours > q_theirs - 0.05, (q_ours, q_theirs)
