"""Tests for the repro-anc command-line interface."""

import io

import pytest

from repro.cli import main
from repro.graph.io import write_edge_list, write_temporal_edge_list
from repro.core.activation import Activation


@pytest.fixture
def edgelist_file(tmp_path, small_planted):
    graph, _ = small_planted
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path), graph


@pytest.fixture
def temporal_file(tmp_path, small_planted):
    graph, _ = small_planted
    edges = list(graph.edges())
    stream = [
        Activation(*edges[i % len(edges)], float(1 + i // 5)) for i in range(25)
    ]
    path = tmp_path / "temporal.txt"
    write_temporal_edge_list(graph, stream, path)
    return str(path), graph


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_reports_stats(self, edgelist_file):
        path, graph = edgelist_file
        code, text = run_cli(["info", path])
        assert code == 0
        assert f"nodes:      {graph.n}" in text
        assert f"edges:      {graph.m}" in text
        assert "components: 1" in text


class TestCluster:
    def test_anc_default(self, edgelist_file):
        path, graph = edgelist_file
        code, text = run_cli(["cluster", path, "--rep", "1", "--pyramids", "2"])
        assert code == 0
        assert "ANC clustering at level" in text
        assert "clusters" in text

    def test_explicit_level(self, edgelist_file):
        path, _ = edgelist_file
        code, text = run_cli(
            ["cluster", path, "--rep", "0", "--pyramids", "2", "--level", "2"]
        )
        assert code == 0
        assert "at level 2" in text

    @pytest.mark.parametrize("method", ["louvain", "scan", "attractor"])
    def test_baseline_methods(self, edgelist_file, method):
        path, _ = edgelist_file
        code, text = run_cli(["cluster", path, "--method", method])
        assert code == 0
        assert "clusters" in text

    def test_min_size_filters(self, edgelist_file):
        path, _ = edgelist_file
        _, all_text = run_cli(["cluster", path, "--method", "louvain"])
        _, filtered = run_cli(
            ["cluster", path, "--method", "louvain", "--min-size", "10"]
        )
        count_all = int(all_text.split(" clusters")[0].split()[-1])
        count_filtered = int(filtered.split(" clusters")[0].split()[-1])
        assert count_filtered <= count_all


class TestStream:
    def test_replay_to_end(self, temporal_file):
        path, _ = temporal_file
        code, text = run_cli(
            ["stream", path, "--engine", "anco", "--rep", "1", "--pyramids", "2"]
        )
        assert code == 0
        assert "replaying" in text
        assert "snapshot" in text

    def test_checkpoints(self, temporal_file):
        path, _ = temporal_file
        code, text = run_cli(
            [
                "stream", path, "--engine", "anco", "--rep", "0",
                "--pyramids", "2", "--at", "2", "--at", "4",
            ]
        )
        assert code == 0
        assert text.count("snapshot") == 2

    def test_query_node(self, temporal_file):
        path, _ = temporal_file
        code, text = run_cli(
            [
                "stream", path, "--engine", "anco", "--rep", "0",
                "--pyramids", "2", "--query", "0",
            ]
        )
        assert code == 0
        assert "cluster of 0:" in text

    def test_unknown_query_node(self, temporal_file):
        path, _ = temporal_file
        code, text = run_cli(
            [
                "stream", path, "--engine", "anco", "--rep", "0",
                "--pyramids", "2", "--query", "nosuchnode",
            ]
        )
        assert code == 0
        assert "unknown node" in text

    @pytest.mark.parametrize("engine", ["anco", "ancor", "ancf"])
    def test_all_engines(self, temporal_file, engine):
        path, _ = temporal_file
        code, text = run_cli(
            ["stream", path, "--engine", engine, "--rep", "0", "--pyramids", "2"]
        )
        assert code == 0

    def test_watch_mode_runs(self, temporal_file):
        path, _ = temporal_file
        code, text = run_cli(
            [
                "stream", path, "--engine", "anco", "--rep", "0",
                "--pyramids", "2", "--watch", "0",
            ]
        )
        assert code == 0
        assert "replaying" in text

    def test_watch_unknown_node_errors(self, temporal_file):
        path, _ = temporal_file
        code, text = run_cli(
            [
                "stream", path, "--engine", "anco", "--rep", "0",
                "--pyramids", "2", "--watch", "missing",
            ]
        )
        assert code == 1
        assert "unknown watch node" in text

    def test_empty_stream_errors(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        code, text = run_cli(["stream", str(path)])
        assert code == 1
        assert "no activations" in text


class TestDatasets:
    def test_lists_table1(self):
        code, text = run_cli(["datasets"])
        assert code == 0
        assert "CO" in text and "TW" in text
        assert text.count("\n") >= 18
