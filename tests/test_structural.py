"""Unit tests for modularity and conductance."""

import pytest

from repro.evalm.structural import (
    average_conductance,
    cluster_conductance,
    modularity,
    structural_scores,
    total_weight,
    weighted_degrees,
)
from repro.graph.generators import barbell_graph, complete_graph
from repro.graph.graph import Graph


class TestTotals:
    def test_unweighted_total_is_edge_count(self, triangle):
        assert total_weight(triangle) == 3.0

    def test_weighted_total(self, triangle):
        weights = {e: 2.0 for e in triangle.edges()}
        assert total_weight(triangle, weights) == 6.0

    def test_weighted_degrees(self, triangle):
        weights = {(0, 1): 1.0, (0, 2): 2.0, (1, 2): 3.0}
        deg = weighted_degrees(triangle, weights)
        assert deg == [3.0, 4.0, 5.0]


class TestModularity:
    def test_single_cluster_is_near_zero(self, triangle):
        # All nodes in one cluster: Q = 1 - 1 = 0.
        assert modularity(triangle, [[0, 1, 2]]) == pytest.approx(0.0)

    def test_barbell_split_positive(self):
        g = barbell_graph(5, bridge=1)
        left = list(range(5))
        right = list(range(5, 10))
        q_split = modularity(g, [left, right])
        q_whole = modularity(g, [left + right])
        assert q_split > q_whole

    def test_newman_hand_computed(self):
        # Two triangles joined by one edge: the classic Q = 10/14 - ... case.
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        q = modularity(g, [[0, 1, 2], [3, 4, 5]])
        m = 7.0
        expected = (3 / m - (7 / (2 * m)) ** 2) + (3 / m - (7 / (2 * m)) ** 2)
        assert q == pytest.approx(expected)

    def test_weighted_matches_scaled_unweighted(self, barbell):
        """Uniformly scaling all weights leaves Q unchanged."""
        clusters = [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        weights = {e: 3.0 for e in barbell.edges()}
        assert modularity(barbell, clusters, weights) == pytest.approx(
            modularity(barbell, clusters)
        )

    def test_overlapping_clusters_rejected(self, triangle):
        with pytest.raises(ValueError):
            modularity(triangle, [[0, 1], [1, 2]])

    def test_empty_graph(self):
        assert modularity(Graph(3), [[0], [1], [2]]) == 0.0

    def test_partial_partition_allowed(self, barbell):
        q = modularity(barbell, [[0, 1, 2, 3, 4]])  # only one bell clustered
        assert -1.0 <= q <= 1.0


class TestConductance:
    def test_isolated_cluster_zero(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert cluster_conductance(g, [0, 1, 2]) == 0.0

    def test_fully_cut_cluster_high(self):
        # A single node inside a clique: all its edges are cut.
        g = complete_graph(4)
        c = cluster_conductance(g, [0])
        assert c == pytest.approx(1.0)

    def test_barbell_bell_low(self):
        g = barbell_graph(5, bridge=1)
        c = cluster_conductance(g, list(range(5)))
        # One cut edge against vol=21.
        assert c == pytest.approx(1 / 21)

    def test_average_weighted_by_size(self):
        g = barbell_graph(5, bridge=1)
        left = list(range(5))
        right = list(range(5, 10))
        avg = average_conductance(g, [left, right])
        assert avg == pytest.approx(1 / 21)

    def test_empty_clusters_degenerate(self, triangle):
        assert average_conductance(triangle, []) == 1.0

    def test_structural_scores_shape(self, barbell):
        scores = structural_scores(barbell, [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]])
        assert set(scores) == {"modularity", "conductance", "clusters"}
        assert scores["clusters"] == 2.0
