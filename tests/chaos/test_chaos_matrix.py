"""The chaos matrix as a pytest suite.

Every scenario in :data:`repro.faults.SCENARIOS` is run at three pinned
seeds.  Each cell must land in its contract — either the recovered
engine state is byte-identical to the fault-free oracle (exact float
reprs, same clusterings) or the failure surfaced as a *typed* error.
A cell that diverges silently is the one unforgivable outcome and
fails the suite (and the CI gate) immediately.

Gated behind ``@pytest.mark.chaos`` (enable with ``--chaos`` or
``ANC_CHAOS=1``) so the tier-1 suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.faults import SCENARIOS, run_scenario

SEEDS = (0, 1, 2)

#: The acceptance floor: the matrix must exercise at least this many
#: distinct injector kinds across the scenario catalog.
MIN_INJECTOR_KINDS = 8

pytestmark = pytest.mark.chaos


def _kinds() -> set:
    kinds = set()
    for scenario in SCENARIOS:
        for spec in scenario.specs(0, 100):
            kinds.add((spec.site, spec.kind))
    return kinds


def test_matrix_covers_injector_floor():
    """The catalog spans >= 8 (site, kind) injector combinations."""
    assert len(_kinds()) >= MIN_INJECTOR_KINDS, sorted(_kinds())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_cell_in_contract(scenario, seed, tmp_path):
    result = run_scenario(scenario.name, seed, tmp_path)
    assert not result.silent_divergence, (
        f"SILENT DIVERGENCE in {scenario.name} seed={seed}: {result.detail}"
    )
    assert result.status != "error", (
        f"harness escape in {scenario.name} seed={seed}: {result.detail}"
    )
    assert result.ok, (
        f"{scenario.name} seed={seed}: expected {result.expect}, "
        f"got {result.status} ({result.detail})"
    )
    assert len(result.injected) >= 1, "scenario ran but no fault ever fired"


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_same_outcome(seed, tmp_path):
    """Determinism: re-running a cell reproduces status and detail."""
    first = run_scenario("wal-torn-tail", seed, tmp_path / "a")
    second = run_scenario("wal-torn-tail", seed, tmp_path / "b")
    assert first.status == second.status
    assert first.injected == second.injected


#: The CI differential slice: with ``ANC_BACKEND=array`` every SUT
#: engine (pipeline, recovery, servers, shard workers) runs the array
#: backend while the oracles stay on dict, so each cell's byte-identity
#: contract doubles as a cross-backend check under faults.  One
#: scenario per runner family keeps the slice fast; the full matrix
#: accepts the same override locally.
ARRAY_SLICE = (
    "wal-torn-tail",
    "service-batch-duplicate",
    "shard-worker-crash-mid-batch",
)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", ARRAY_SLICE)
def test_array_backend_cell_in_contract(name, seed, tmp_path, monkeypatch):
    """Array-backend SUT vs dict-backend oracle, under fault injection."""
    monkeypatch.setenv("ANC_BACKEND", "array")
    result = run_scenario(name, seed, tmp_path)
    assert not result.silent_divergence, (
        f"BACKEND DIVERGENCE in {name} seed={seed}: {result.detail}"
    )
    assert result.status != "error", (
        f"harness escape in {name} seed={seed}: {result.detail}"
    )
    assert result.ok, (
        f"{name} seed={seed}: expected {result.expect}, "
        f"got {result.status} ({result.detail})"
    )
